//! Exact per-request waterfalls, assembled from the causal context the
//! transport propagates on every `SPush`/`SPull`/reply (DESIGN.md §17).
//!
//! Every stamped [`TraceEvent`] carries the `(request_id, attempt)` of the
//! request that caused it, so one logical operation — worker push → wire →
//! server apply/defer → DPR release → reply → wire → worker unblock — can
//! be reassembled *exactly*, with no clock heuristics and no FIFO guessing:
//!
//! * [`assemble`] groups stamped events by `request_id`, folds duplicate
//!   deliveries (a [`fault`]-duplicated frame, or a dedup window re-serving
//!   a cached reply) by their identity key, and orders each request's
//!   stages canonically — the same folded waterfall comes out of a clean
//!   stream and of a reordered, duplicated one.
//! * [`tail_sample`] is the collector's retention policy: windowed by
//!   request start time (mirroring the [`StreamAnalyzer`] windows), keep
//!   full waterfalls only for the top-`p` fraction of each window by total
//!   latency — plus every request touched by recovery (retries, lost
//!   connections, control-plane remaps) — and fold the rest into per-stage
//!   aggregate histograms with an exact surviving drop-count:
//!   `retained + sampled_out == observed`, checked by [`Sampled::balance`].
//! * [`Waterfall::stable_line`] renders the *logical* shape (stage counts,
//!   attempts, folded duplicates — no wall-clock), so two same-seed chaos
//!   runs print bit-identical `waterfall-` lines; [`render_text`] renders
//!   aligned human-readable waterfalls with times, and [`Waterfall::json`]
//!   one NDJSON object for `GET /waterfall`.
//! * [`stage_table`] aggregates per-stage transition latencies (µs) into
//!   histograms for the p50/p99 table `repro waterfall` prints.
//! * [`export_metrics`] refreshes `waterfall_wire_us` / `waterfall_barrier_us`
//!   histograms into a [`MetricsRegistry`] with OpenMetrics-style exemplars:
//!   the `_max` sample line links back to the retained `request_id` that
//!   produced the bucket's worst value.
//!
//! Determinism contract: request ids are allocated from per-worker (and
//! per-supervisor-replica) counters, so a seeded single-worker chaos run
//! issues the same request set every time; with the retain-everything
//! sampler (`top_fraction = 1.0`, what `repro waterfall` uses) the retained
//! set — and therefore every `waterfall-` line — is a pure function of the
//! seed. Latency-based retention (`top_fraction < 1.0`) is for live
//! tail-sampling, where wall-clock nondeterminism is inherent.
//!
//! [`fault`]: crate::event::EventKind::RetryScheduled
//! [`StreamAnalyzer`]: crate::stream::StreamAnalyzer

use std::collections::{BTreeMap, HashMap};

use crate::event::{EventKind, NO_ID};
use crate::hist::Histogram;
use crate::json;
use crate::metrics::MetricsRegistry;
use crate::tracer::Trace;

/// High bit of a `request_id` marking control-plane (supervisor) traffic:
/// `Install`/`RouteUpdate` fan-outs from a recovery action. Worker request
/// ids never set it.
pub const CONTROL_PLANE_BIT: u64 = 1 << 63;

/// One folded stage of a request's lifecycle: a stamped event, after
/// duplicate deliveries collapsed onto the earliest occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// What happened.
    pub kind: EventKind,
    /// Seconds on the trace clock (earliest occurrence when folded).
    pub ts: f64,
    /// Span duration (0 for instants).
    pub dur: f64,
    /// Shard involved, or [`NO_ID`].
    pub shard: u32,
    /// Worker involved, or [`NO_ID`].
    pub worker: u32,
    /// Retry ordinal of the request when this stage ran.
    pub attempt: u32,
    /// Wire bytes for wire stages; payload bytes otherwise.
    pub bytes: u64,
}

/// A stage plus the raw `progress` field it was recorded with. Progress
/// participates only in the duplicate-folding identity — two deliveries of
/// one frame (or a re-served cached reply) agree on every field here,
/// while the request and reply legs of one hop differ at least in `bytes`
/// (a request frame and its reply never serialize to the same size).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FoldStage {
    stage: Stage,
    progress_key: u64,
}

/// One request's folded waterfall.
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// The causal request id every stage carries.
    pub request_id: u64,
    /// Stages in canonical order (timestamp, then kind rank — independent
    /// of the order events arrived in the trace buffer).
    pub stages: Vec<Stage>,
    /// Duplicate deliveries folded away during assembly.
    pub duplicates_folded: u64,
}

impl Waterfall {
    /// The worker that issued the request ([`NO_ID`] for control-plane
    /// fan-outs that never name one).
    pub fn worker(&self) -> u32 {
        self.stages
            .iter()
            .map(|s| s.worker)
            .find(|&w| w != NO_ID)
            .unwrap_or(NO_ID)
    }

    /// Attempts observed: highest retry ordinal + 1.
    pub fn attempts(&self) -> u32 {
        self.stages.iter().map(|s| s.attempt).max().unwrap_or(0) + 1
    }

    /// First stage timestamp.
    pub fn start_ts(&self) -> f64 {
        self.stages.first().map(|s| s.ts).unwrap_or(0.0)
    }

    /// Last covered instant: max over `ts + dur`.
    pub fn end_ts(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.ts + s.dur)
            .fold(self.start_ts(), f64::max)
    }

    /// Total lifetime, first stage to last, retries included.
    pub fn total_secs(&self) -> f64 {
        (self.end_ts() - self.start_ts()).max(0.0)
    }

    /// Supervisor-issued control-plane request (`Install`/`RouteUpdate`)?
    pub fn is_control_plane(&self) -> bool {
        self.request_id & CONTROL_PLANE_BIT != 0
    }

    /// Did recovery machinery touch this request? Control-plane fan-outs,
    /// retries, lost connections and shard remaps all count — the tail
    /// sampler always retains these regardless of latency rank.
    pub fn recovery_touched(&self) -> bool {
        self.is_control_plane()
            || self.stages.iter().any(|s| {
                matches!(
                    s.kind,
                    EventKind::RetryScheduled
                        | EventKind::ConnectionLost
                        | EventKind::ShardRemapped
                )
            })
    }

    /// Structural integrity of the folded waterfall:
    ///
    /// * stages exist and are in canonical (time-monotone) order;
    /// * no stage's span extends past the waterfall's end;
    /// * per `(attempt, shard)`, wire receives never outrun wire sends in
    ///   canonical order — with exact ids there is a send on record for
    ///   every receive, so a violation means the trace lost the send (ring
    ///   overwrite) or clocks ran backwards.
    ///
    /// Control-plane requests skip the wire balance: the supervisor's
    /// fan-out sends are not traced, only their receipt is.
    pub fn check_gapless(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err(format!("request {}: no stages", self.request_id));
        }
        let end = self.end_ts();
        let mut prev = f64::NEG_INFINITY;
        let mut wire: HashMap<(u32, u32), i64> = HashMap::new();
        for s in &self.stages {
            if s.ts < prev {
                return Err(format!(
                    "request {}: stage {} at {:.9}s precedes {:.9}s",
                    self.request_id,
                    s.kind.name(),
                    s.ts,
                    prev
                ));
            }
            prev = s.ts;
            if s.ts + s.dur > end + 1e-9 {
                return Err(format!(
                    "request {}: {} span overruns the waterfall end",
                    self.request_id,
                    s.kind.name()
                ));
            }
            if !self.is_control_plane() && s.shard != NO_ID {
                let bal = wire.entry((s.attempt, s.shard)).or_insert(0);
                match s.kind {
                    EventKind::WireSend => *bal += 1,
                    EventKind::WireRecv => {
                        *bal -= 1;
                        if *bal < 0 {
                            return Err(format!(
                                "request {}: wire recv without a send \
                                 (attempt {}, shard {})",
                                self.request_id, s.attempt, s.shard
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// The deterministic one-line digest: logical shape only (ids, stage
    /// counts, attempts, folded duplicates), no wall-clock fields — two
    /// same-seed runs print identical lines. Stage counts are listed in
    /// stable kind-index order.
    pub fn stable_line(&self) -> String {
        let mut counts = [0u64; crate::event::KINDS];
        for s in &self.stages {
            counts[s.kind.index()] += 1;
        }
        let stages: Vec<String> = EventKind::ALL
            .iter()
            .filter(|k| counts[k.index()] > 0)
            .map(|k| format!("{}:{}", k.name(), counts[k.index()]))
            .collect();
        let mut shards: Vec<u32> = self
            .stages
            .iter()
            .map(|s| s.shard)
            .filter(|&m| m != NO_ID)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        let shards: Vec<String> = shards.iter().map(|m| m.to_string()).collect();
        format!(
            "waterfall-request id={} worker={} attempts={} folded={} shards={} stages={}",
            self.request_id,
            id_str(self.worker()),
            self.attempts(),
            self.duplicates_folded,
            if shards.is_empty() {
                "-".to_string()
            } else {
                shards.join("+")
            },
            stages.join(",")
        )
    }

    /// One NDJSON object for `GET /waterfall`: request header plus the full
    /// stage list with timestamps relative to the waterfall start (µs).
    pub fn json(&self) -> String {
        let start = self.start_ts();
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"kind\":\"{}\",\"offset_us\":{},\"dur_us\":{},\"shard\":{},\
                     \"worker\":{},\"attempt\":{},\"bytes\":{}}}",
                    s.kind.name(),
                    json::number((s.ts - start) * 1e6),
                    json::number(s.dur * 1e6),
                    id_json(s.shard),
                    id_json(s.worker),
                    s.attempt,
                    s.bytes
                )
            })
            .collect();
        format!(
            "{{\"request_id\":{},\"worker\":{},\"attempts\":{},\"control_plane\":{},\
             \"total_us\":{},\"duplicates_folded\":{},\"stages\":[{}]}}",
            self.request_id,
            id_json(self.worker()),
            self.attempts(),
            self.is_control_plane(),
            json::number(self.total_secs() * 1e6),
            self.duplicates_folded,
            stages.join(",")
        )
    }

    /// Per-hop wire latencies (seconds), matched by exact id: within this
    /// request, the k-th `WireRecv` on a shard answers the k-th `WireSend`
    /// on that shard (request leg then reply leg, in canonical order).
    pub fn wire_latencies(&self) -> Vec<f64> {
        let mut in_flight: HashMap<(u32, u32), std::collections::VecDeque<f64>> = HashMap::new();
        let mut out = Vec::new();
        for s in &self.stages {
            if s.shard == NO_ID {
                continue;
            }
            match s.kind {
                EventKind::WireSend => in_flight
                    .entry((s.attempt, s.shard))
                    .or_default()
                    .push_back(s.ts),
                EventKind::WireRecv => {
                    if let Some(sent) = in_flight
                        .get_mut(&(s.attempt, s.shard))
                        .and_then(|q| q.pop_front())
                    {
                        out.push((s.ts - sent).max(0.0));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total `BarrierWait` seconds inside this request.
    pub fn barrier_secs(&self) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.kind == EventKind::BarrierWait)
            .map(|s| s.dur)
            .sum()
    }
}

fn id_str(id: u32) -> String {
    if id == NO_ID {
        "-".to_string()
    } else {
        id.to_string()
    }
}

fn id_json(id: u32) -> i64 {
    if id == NO_ID {
        -1
    } else {
        id as i64
    }
}

/// Every waterfall assembled from one trace, before sampling.
#[derive(Debug, Clone, Default)]
pub struct WaterfallSet {
    /// Folded waterfalls, sorted by `request_id`.
    pub waterfalls: Vec<Waterfall>,
    /// Stamped events that contributed (excluding folded duplicates).
    pub stamped_events: u64,
    /// Events with no causal context, ignored by assembly.
    pub unstamped_events: u64,
}

impl WaterfallSet {
    /// Distinct requests observed.
    pub fn observed(&self) -> u64 {
        self.waterfalls.len() as u64
    }

    /// The waterfall for `request_id`, if observed.
    pub fn get(&self, request_id: u64) -> Option<&Waterfall> {
        self.waterfalls
            .binary_search_by_key(&request_id, |w| w.request_id)
            .ok()
            .map(|i| &self.waterfalls[i])
    }

    /// The `n` slowest waterfalls by total lifetime, slowest first (ties
    /// broken by request id, so the order is stable).
    pub fn slowest(&self, n: usize) -> Vec<&Waterfall> {
        let mut refs: Vec<&Waterfall> = self.waterfalls.iter().collect();
        refs.sort_by(|a, b| {
            b.total_secs()
                .total_cmp(&a.total_secs())
                .then(a.request_id.cmp(&b.request_id))
        });
        refs.truncate(n);
        refs
    }
}

/// Assemble every request's folded waterfall from a trace.
///
/// Events with `request_id == 0` (recorded outside any request context)
/// are counted but ignored. Within a request, duplicate deliveries — same
/// `(attempt, kind, shard, worker, bytes, progress)` — fold onto the
/// earliest occurrence. Stage order is canonical: by timestamp, ties by
/// attempt then kind rank then shard — a function of the events' *fields*,
/// never of their buffer order, so a reordered stream assembles
/// identically (the order-insensitivity property tests pin this).
pub fn assemble(trace: &Trace) -> WaterfallSet {
    let mut grouped: BTreeMap<u64, Vec<FoldStage>> = BTreeMap::new();
    let mut set = WaterfallSet::default();
    for ev in &trace.events {
        if ev.request_id == 0 {
            set.unstamped_events += 1;
            continue;
        }
        grouped.entry(ev.request_id).or_default().push(FoldStage {
            stage: Stage {
                kind: ev.kind,
                ts: ev.ts,
                dur: ev.dur,
                shard: ev.shard,
                worker: ev.worker,
                attempt: ev.attempt,
                bytes: ev.bytes,
            },
            progress_key: ev.progress,
        });
    }
    for (request_id, mut raw) in grouped {
        // Fold duplicates onto the earliest delivery.
        let mut earliest: HashMap<(u32, usize, u32, u32, u64, u64), FoldStage> = HashMap::new();
        let mut folded = 0u64;
        for fs in raw.drain(..) {
            let key = (
                fs.stage.attempt,
                fs.stage.kind.index(),
                fs.stage.shard,
                fs.stage.worker,
                fs.stage.bytes,
                fs.progress_key,
            );
            match earliest.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(fs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    folded += 1;
                    if fs.stage.ts < e.get().stage.ts {
                        e.insert(fs);
                    }
                }
            }
        }
        let mut stages: Vec<Stage> = earliest.into_values().map(|fs| fs.stage).collect();
        stages.sort_by(|a, b| {
            a.ts.total_cmp(&b.ts)
                .then(a.attempt.cmp(&b.attempt))
                .then(a.kind.index().cmp(&b.kind.index()))
                .then(a.shard.cmp(&b.shard))
                .then(a.worker.cmp(&b.worker))
                .then(a.bytes.cmp(&b.bytes))
        });
        set.stamped_events += stages.len() as u64;
        set.waterfalls.push(Waterfall {
            request_id,
            stages,
            duplicates_folded: folded,
        });
    }
    set
}

/// Tail-sampling policy: window width (mirroring the stream analyzer's
/// windows) and the fraction of each window's requests to retain in full.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Fraction of each window retained, by total-latency rank (ceil'd, so
    /// a non-empty window always retains at least one request). `1.0`
    /// retains everything — the deterministic `repro waterfall` mode.
    pub top_fraction: f64,
    /// Window width in seconds over request *start* times.
    pub window_secs: f64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            top_fraction: 1.0,
            window_secs: 0.5,
        }
    }
}

/// The sampler's output: full waterfalls for the retained set, per-stage
/// aggregate histograms for everything (so sampled-out requests still
/// contribute to the p50/p99 table), and exact drop accounting.
#[derive(Debug, Clone, Default)]
pub struct Sampled {
    /// Retained waterfalls, sorted by request id.
    pub retained: Vec<Waterfall>,
    /// Requests dropped to aggregates.
    pub sampled_out: u64,
    /// Requests observed before sampling.
    pub observed: u64,
    /// Total-latency histogram (µs) over *all* observed requests.
    pub total_us: Histogram,
}

impl Sampled {
    /// The collector balance invariant: every observed request is either
    /// retained or counted as sampled out.
    pub fn balance(&self) -> Result<(), String> {
        let retained = self.retained.len() as u64;
        if retained + self.sampled_out == self.observed {
            Ok(())
        } else {
            Err(format!(
                "waterfall balance violated: retained {} + sampled_out {} != observed {}",
                retained, self.sampled_out, self.observed
            ))
        }
    }
}

/// Apply tail-based sampling: bucket requests into `window_secs` windows by
/// start time; within each window keep the top `top_fraction` by total
/// latency (at least one per non-empty window); always keep
/// recovery-touched requests. Everything else folds into the aggregate
/// histogram and the `sampled_out` count.
pub fn tail_sample(set: &WaterfallSet, cfg: SamplerConfig) -> Sampled {
    let mut out = Sampled {
        observed: set.observed(),
        ..Sampled::default()
    };
    let epoch = set
        .waterfalls
        .iter()
        .map(|w| w.start_ts())
        .fold(f64::INFINITY, f64::min);
    let mut windows: BTreeMap<u64, Vec<&Waterfall>> = BTreeMap::new();
    for w in &set.waterfalls {
        out.total_us.record((w.total_secs() * 1e6) as u64);
        let idx = if cfg.window_secs > 0.0 {
            ((w.start_ts() - epoch) / cfg.window_secs) as u64
        } else {
            0
        };
        windows.entry(idx).or_default().push(w);
    }
    for (_, mut members) in windows {
        members.sort_by(|a, b| {
            b.total_secs()
                .total_cmp(&a.total_secs())
                .then(a.request_id.cmp(&b.request_id))
        });
        let keep = ((members.len() as f64 * cfg.top_fraction).ceil() as usize).max(1);
        for (rank, w) in members.into_iter().enumerate() {
            if rank < keep || w.recovery_touched() {
                out.retained.push((*w).clone());
            } else {
                out.sampled_out += 1;
            }
        }
    }
    out.retained.sort_by_key(|w| w.request_id);
    out
}

/// Per-transition latency table over a set of waterfalls: for every pair of
/// consecutive canonical stages `a → b`, the µs gap lands in the histogram
/// named `a>b`; `BarrierWait` spans additionally land in `barrier_wait`.
/// Returned sorted by name for stable rendering.
pub fn stage_table(waterfalls: &[Waterfall]) -> Vec<(String, Histogram)> {
    let mut table: BTreeMap<String, Histogram> = BTreeMap::new();
    for w in waterfalls {
        for pair in w.stages.windows(2) {
            let name = format!("{}>{}", pair[0].kind.name(), pair[1].kind.name());
            table
                .entry(name)
                .or_default()
                .record(((pair[1].ts - pair[0].ts).max(0.0) * 1e6) as u64);
        }
        for s in &w.stages {
            if s.kind == EventKind::BarrierWait {
                table
                    .entry("barrier_wait".to_string())
                    .or_default()
                    .record((s.dur * 1e6) as u64);
            }
        }
    }
    table.into_iter().collect()
}

/// Width of the text waterfall's bar column.
const BAR_WIDTH: usize = 24;

/// Render aligned text waterfalls for `top` (slowest-first as given):
/// per stage an offset from request start, the stage name, its actors, and
/// a bar positioned proportionally inside the request's lifetime.
pub fn render_text(top: &[&Waterfall]) -> String {
    let mut out = String::new();
    for w in top {
        let total = w.total_secs().max(1e-12);
        out.push_str(&format!(
            "request {} worker {} attempts {} total {:.3}ms ({} duplicates folded)\n",
            w.request_id,
            id_str(w.worker()),
            w.attempts(),
            w.total_secs() * 1e3,
            w.duplicates_folded
        ));
        let start = w.start_ts();
        for s in &w.stages {
            let off = (s.ts - start) / total;
            let frac = (s.dur / total).max(0.0);
            let lead = ((off * BAR_WIDTH as f64) as usize).min(BAR_WIDTH);
            let fill = ((frac * BAR_WIDTH as f64).ceil() as usize)
                .max(1)
                .min(BAR_WIDTH - lead);
            let bar: String = std::iter::repeat(' ')
                .take(lead)
                .chain(std::iter::repeat('#').take(fill))
                .chain(std::iter::repeat('.').take(BAR_WIDTH - lead - fill))
                .collect();
            out.push_str(&format!(
                "  {:>10.3}ms  {:<18} shard {:<2} attempt {} |{bar}|\n",
                (s.ts - start) * 1e3,
                s.kind.name(),
                id_str(s.shard),
                s.attempt,
            ));
        }
        out.push('\n');
    }
    out
}

/// Refresh wire/barrier latency histograms (with exemplars) into a
/// registry from the retained waterfalls: every per-hop wire latency lands
/// in `waterfall_wire_us` and every barrier wait in `waterfall_barrier_us`,
/// each carrying the `request_id` of its worst observation as an
/// OpenMetrics-style exemplar on the `_max` sample line — the link from a
/// latency bucket back to a retained waterfall.
pub fn export_metrics(registry: &MetricsRegistry, retained: &[Waterfall]) {
    registry.set_help(
        "waterfall_wire_us",
        "per-hop wire latency from retained request waterfalls; \
         the _max exemplar names the request",
    );
    registry.set_help(
        "waterfall_barrier_us",
        "barrier wait inside retained request waterfalls; \
         the _max exemplar names the request",
    );
    for w in retained {
        for secs in w.wire_latencies() {
            registry.observe_exemplar("waterfall_wire_us", (secs * 1e6) as u64, w.request_id);
        }
        let b = w.barrier_secs();
        if b > 0.0 {
            registry.observe_exemplar("waterfall_barrier_us", (b * 1e6) as u64, w.request_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, KINDS};
    use crate::tracer::Trace;

    /// A stamped event, terse.
    fn ev(
        rid: u64,
        attempt: u32,
        kind: EventKind,
        ts: f64,
        shard: u32,
        worker: u32,
        bytes: u64,
    ) -> TraceEvent {
        TraceEvent {
            ts,
            kind,
            shard,
            worker,
            bytes,
            request_id: rid,
            attempt,
            ..Default::default()
        }
    }

    /// One clean pull request: send → recv → requested → deferred →
    /// released → reply send → reply recv → barrier.
    fn clean_request(rid: u64, base: f64) -> Vec<TraceEvent> {
        let w = 0;
        let m = 0;
        vec![
            ev(rid, 0, EventKind::WireSend, base, m, w, 58),
            ev(rid, 0, EventKind::WireRecv, base + 0.001, m, w, 58),
            ev(rid, 0, EventKind::PullRequested, base + 0.0011, m, w, 58),
            ev(rid, 0, EventKind::PullDeferred, base + 0.0012, m, w, 0),
            ev(rid, 0, EventKind::DprReleased, base + 0.004, m, w, 0),
            ev(rid, 0, EventKind::WireSend, base + 0.0041, m, w, 512),
            ev(rid, 0, EventKind::WireRecv, base + 0.005, m, w, 512),
            {
                let mut b = ev(rid, 0, EventKind::BarrierWait, base, NO_ID, w, 0);
                b.dur = 0.005;
                b
            },
        ]
    }

    fn trace_of(events: Vec<TraceEvent>) -> Trace {
        let mut counts = [0u64; KINDS];
        for e in &events {
            counts[e.kind.index()] += 1;
        }
        Trace {
            events,
            counts,
            dropped: 0,
        }
    }

    #[test]
    fn assembly_groups_by_request_and_orders_canonically() {
        let mut events = clean_request(7, 1.0);
        events.extend(clean_request(9, 2.0));
        // An unstamped event is ignored, not misfiled.
        events.push(ev(0, 0, EventKind::VTrainAdvanced, 1.5, 0, NO_ID, 0));
        let set = assemble(&trace_of(events));
        assert_eq!(set.observed(), 2);
        assert_eq!(set.unstamped_events, 1);
        let w = set.get(7).expect("request 7 assembled");
        assert_eq!(w.stages.len(), 8);
        assert_eq!(w.worker(), 0);
        assert_eq!(w.attempts(), 1);
        assert!((w.total_secs() - 0.005).abs() < 1e-9);
        w.check_gapless().expect("clean request is gapless");
        assert!(set.get(8).is_none());
        // Slowest ranking is stable: equal totals break by id.
        let slow = set.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].request_id, 7);
    }

    #[test]
    fn duplicates_fold_and_reorder_is_invisible() {
        let clean = clean_request(3, 1.0);
        let mut chaotic = clean.clone();
        chaotic.reverse();
        // Two duplicate deliveries: a re-received request frame and a
        // re-served reply, both later than the originals.
        let mut dup_recv = clean[1];
        dup_recv.ts += 0.002;
        let mut dup_reply = clean[5];
        dup_reply.ts += 0.003;
        chaotic.insert(2, dup_recv);
        chaotic.push(dup_reply);

        let a = assemble(&trace_of(clean));
        let b = assemble(&trace_of(chaotic));
        let (wa, wb) = (a.get(3).unwrap(), b.get(3).unwrap());
        assert_eq!(wa.stages, wb.stages, "folded stages agree");
        assert_eq!(wa.duplicates_folded, 0);
        assert_eq!(wb.duplicates_folded, 2, "both duplicates accounted");
        assert_eq!(
            wa.stable_line(),
            wb.stable_line().replace("folded=2", "folded=0")
        );
        wb.check_gapless().expect("folded chaos stream is gapless");
    }

    #[test]
    fn gapless_detects_a_lost_send() {
        // The recv survives but the ring overwrote its send.
        let events: Vec<TraceEvent> = clean_request(4, 1.0)
            .into_iter()
            .filter(|e| !(e.kind == EventKind::WireSend && e.bytes == 58))
            .collect();
        let set = assemble(&trace_of(events));
        let err = set.get(4).unwrap().check_gapless().unwrap_err();
        assert!(err.contains("wire recv without a send"), "{err}");
    }

    #[test]
    fn control_plane_requests_skip_wire_balance() {
        let rid = CONTROL_PLANE_BIT | (1 << 40) | 1;
        // Supervisor fan-outs trace only the receive side.
        let events = vec![
            ev(rid, 0, EventKind::ShardRemapped, 1.0, 0, NO_ID, 64),
            ev(rid, 0, EventKind::WireRecv, 1.001, 1, NO_ID, 96),
            ev(rid, 0, EventKind::WireRecv, 1.002, NO_ID, 0, 80),
        ];
        let set = assemble(&trace_of(events));
        let w = set.get(rid).unwrap();
        assert!(w.is_control_plane());
        assert!(w.recovery_touched());
        w.check_gapless().expect("control plane skips wire balance");
    }

    #[test]
    fn tail_sampler_keeps_top_latency_and_recovery_and_balances() {
        let mut events = Vec::new();
        // Five requests in one window with totals 1ms..5ms, plus a fast
        // retry-touched request that must survive on the recovery rule.
        for i in 0..5u64 {
            let rid = 100 + i;
            let base = 1.0 + i as f64 * 0.01;
            events.push(ev(rid, 0, EventKind::WireSend, base, 0, 0, 58));
            events.push(ev(
                rid,
                0,
                EventKind::WireRecv,
                base + 0.001 * (i + 1) as f64,
                0,
                0,
                58,
            ));
        }
        events.push(ev(200, 0, EventKind::WireSend, 1.0, 0, 1, 58));
        events.push(ev(200, 0, EventKind::RetryScheduled, 1.0001, 0, 1, 0));
        let set = assemble(&trace_of(events));
        assert_eq!(set.observed(), 6);

        let sampled = tail_sample(
            &set,
            SamplerConfig {
                top_fraction: 0.4,
                window_secs: 60.0,
            },
        );
        sampled
            .balance()
            .expect("retained + sampled_out == observed");
        // ceil(6 * 0.4) = 3 by latency rank, plus the recovery-touched one
        // (already-ranked requests are not double-counted).
        let ids: Vec<u64> = sampled.retained.iter().map(|w| w.request_id).collect();
        assert!(
            ids.contains(&104) && ids.contains(&103),
            "slowest retained: {ids:?}"
        );
        assert!(ids.contains(&200), "recovery-touched retained: {ids:?}");
        assert_eq!(sampled.observed, 6);
        assert_eq!(sampled.retained.len() as u64 + sampled.sampled_out, 6);
        assert_eq!(sampled.total_us.count(), 6, "aggregates cover everything");

        // Retain-everything is the deterministic repro mode.
        let all = tail_sample(&set, SamplerConfig::default());
        assert_eq!(all.sampled_out, 0);
        assert_eq!(all.retained.len(), 6);
        all.balance().expect("trivially balanced");
    }

    #[test]
    fn stable_lines_are_sorted_and_logical_only() {
        let mut events = clean_request(12, 5.0);
        events.extend(clean_request(11, 1.0));
        let set = assemble(&trace_of(events));
        let lines: Vec<String> = set.waterfalls.iter().map(|w| w.stable_line()).collect();
        assert!(lines[0].starts_with("waterfall-request id=11 "));
        assert!(lines[1].starts_with("waterfall-request id=12 "));
        // Identical logical shape at different wall times renders
        // identically apart from the id.
        assert_eq!(
            lines[0].replace("id=11", "id=12"),
            lines[1],
            "no wall-clock leaks into the stable line"
        );
        assert!(lines[0].contains("stages=pull_requested:1,pull_deferred:1,dpr_released:1,"));
        assert!(lines[0].contains("wire_send:2,wire_recv:2"));
    }

    #[test]
    fn json_lines_validate_and_carry_stages() {
        let set = assemble(&trace_of(clean_request(5, 2.0)));
        let line = set.get(5).unwrap().json();
        json::validate(&line).expect("waterfall JSON validates");
        assert!(line.contains("\"request_id\":5"));
        assert!(line.contains("\"kind\":\"barrier_wait\""));
        assert!(line.contains("\"control_plane\":false"));
    }

    #[test]
    fn stage_table_aggregates_transitions() {
        let mut events = clean_request(1, 1.0);
        events.extend(clean_request(2, 3.0));
        let set = assemble(&trace_of(events));
        let table = stage_table(&set.waterfalls);
        let names: Vec<&str> = table.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"barrier_wait"), "{names:?}");
        assert!(
            names.iter().any(|n| n.contains("wire_send>wire_recv")),
            "{names:?}"
        );
        for (_, h) in &table {
            assert!(h.count() >= 1);
        }
    }

    #[test]
    fn render_text_aligns_and_scales() {
        let set = assemble(&trace_of(clean_request(6, 1.0)));
        let text = render_text(&set.slowest(1));
        assert!(text.starts_with("request 6 worker 0 attempts 1"));
        for line in text.lines().skip(1).filter(|l| !l.is_empty()) {
            assert!(line.contains('|'), "bar column present: {line}");
        }
        // The barrier spans the whole request: its bar fills the width.
        let barrier = text
            .lines()
            .find(|l| l.contains("barrier_wait"))
            .expect("barrier line");
        assert!(barrier.contains(&"#".repeat(BAR_WIDTH)), "{barrier}");
    }

    #[test]
    fn exemplars_link_histograms_to_requests() {
        let set = assemble(&trace_of(clean_request(42, 1.0)));
        let registry = MetricsRegistry::new();
        export_metrics(&registry, &set.waterfalls);
        let text = registry.render_prometheus();
        assert!(
            text.contains("waterfall_wire_us_max") && text.contains("# {request_id=\"42\"}"),
            "exemplar on the _max line:\n{text}"
        );
        assert!(text.contains("waterfall_barrier_us_count"));
    }
}
