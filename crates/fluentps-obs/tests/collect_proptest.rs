//! Property tests for cluster-wide trace collection: the merge must not
//! care how node batches interleave, per-stream timestamps must come out
//! strictly monotone, and the clock-offset estimate must stay within the
//! error bound the minimum-RTT rule promises.

use fluentps_obs::{ClusterCollector, EventKind, Hlc, OffsetEstimator, TraceEvent, KINDS};
use fluentps_util::proptest::prelude::*;

const NODES: [&str; 3] = ["server0", "server1", "worker0"];

/// One node's stream: finite timestamps and kinds; the source `seq` is the
/// index, matching what a per-node ring hands its streamer.
fn arb_stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec((-1.0e6f64..1.0e6, 0..KINDS), 0..24).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (ts, kind))| TraceEvent {
                ts,
                kind: EventKind::ALL[kind],
                shard: 0,
                worker: 0,
                seq: i as u64,
                ..Default::default()
            })
            .collect()
    })
}

fn arb_cluster() -> impl Strategy<Value = Vec<(Vec<TraceEvent>, f64)>> {
    prop::collection::vec((arb_stream(), -1.0e3f64..1.0e3), NODES.len()..=NODES.len())
}

proptest! {
    /// Ingesting the same per-node batches under two different
    /// interleavings — whole streams in node order vs. split batches in
    /// reverse node order — yields the identical merged trace and the
    /// identical per-node accounting. Per-node order is fixed (the
    /// transport is FIFO per connection); everything else is up for grabs.
    #[test]
    fn merge_is_order_insensitive_across_node_interleavings(
        cluster in arb_cluster(),
        frac in 0.0f64..1.0,
    ) {
        let mut a = ClusterCollector::new(1 << 10);
        for (node, (events, offset)) in NODES.iter().zip(&cluster) {
            a.ingest(node, *offset, 1, events.len() as u64, 0, events);
        }

        let mut b = ClusterCollector::new(1 << 10);
        // First halves in reverse node order, then second halves forward.
        for (node, (events, offset)) in NODES.iter().zip(&cluster).rev() {
            let cut = ((events.len() as f64) * frac) as usize;
            b.ingest(node, *offset, 1, cut as u64, 0, &events[..cut]);
        }
        for (node, (events, offset)) in NODES.iter().zip(&cluster) {
            let cut = ((events.len() as f64) * frac) as usize;
            b.ingest(node, *offset, 2, events.len() as u64, 0, &events[cut..]);
        }

        let (ta, tb) = (a.snapshot(), b.snapshot());
        prop_assert_eq!(&ta.events, &tb.events);
        prop_assert_eq!(ta.counts, tb.counts);
        prop_assert_eq!(ta.dropped, tb.dropped);
        for (sa, sb) in a.node_stats().iter().zip(b.node_stats().iter()) {
            prop_assert_eq!(&sa.node, &sb.node);
            prop_assert_eq!(sa.received, sb.received);
            prop_assert_eq!(sa.emitted, sb.emitted);
            prop_assert_eq!(sa.dropped, sb.dropped);
            prop_assert_eq!(sa.hlc_bumps, sb.hlc_bumps);
        }
    }

    /// The HLC emits strictly increasing, finite stamps no matter what the
    /// physical clock feeds it — ties, rewinds, even NaN/infinity. (Inputs
    /// span far beyond any real run's seconds-scale timestamps, but stay
    /// clear of f64::MAX where no finite successor exists at all.)
    #[test]
    fn hlc_stamps_are_strictly_monotone(
        ts in prop::collection::vec(
            prop_oneof![
                -1.0e12f64..1.0e12,
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            1..128,
        ),
    ) {
        let mut hlc = Hlc::new();
        let stamps: Vec<f64> = ts.iter().map(|&t| hlc.observe(t)).collect();
        prop_assert!(stamps.iter().all(|s| s.is_finite()));
        prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    /// After ingest, one node's merged timeline is strictly monotone: the
    /// per-stream HLC healed every tie and rewind the offset shift left.
    #[test]
    fn ingested_stream_timestamps_are_strictly_monotone(
        events in arb_stream(),
        offset in -1.0e3f64..1.0e3,
    ) {
        let mut col = ClusterCollector::new(1 << 10);
        col.ingest("worker0", offset, 1, events.len() as u64, 0, &events);
        let trace = col.snapshot();
        prop_assert_eq!(trace.events.len(), events.len());
        prop_assert!(trace.events.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    /// Asymmetric-path probes: with true offset `d` and per-sample one-way
    /// delays `(a, b)`, the midpoint estimate errs by `|a - b| / 2`, which
    /// is at most half the winning sample's RTT. The minimum-RTT rule must
    /// keep the final estimate inside that bound.
    #[test]
    fn offset_estimate_error_is_bounded_by_half_the_winning_rtt(
        d in -1.0e3f64..1.0e3,
        delays in prop::collection::vec((1.0e-6f64..0.1, 1.0e-6f64..0.1), 1..16),
    ) {
        let mut est = OffsetEstimator::new();
        let mut t = 0.0;
        for &(a, b) in &delays {
            est.add_sample(t, t + a + d, t + a + b);
            t += 1.0;
        }
        prop_assert_eq!(est.samples(), delays.len());
        let rtt = est.rtt().expect("at least one sample");
        prop_assert!((est.offset() - d).abs() <= rtt / 2.0 + 1e-9,
            "estimate {} vs true {} exceeds rtt/2 = {}", est.offset(), d, rtt / 2.0);
    }

    /// A slowly drifting node clock: the true offset moves monotonically by
    /// `rate` between ping rounds (crystal skew, not a step). The min-RTT
    /// winner may be any round, so its snapshot of the offset is at most
    /// the whole accumulated drift away from the end-of-run truth — the
    /// estimate must land within `rtt/2` of *some* round's offset, hence
    /// within `rtt/2 + total drift` of the final one.
    #[test]
    fn offset_estimate_error_stays_bounded_under_slow_clock_drift(
        d in -1.0e3f64..1.0e3,
        rate in prop_oneof![-1.0e-4f64..-1.0e-9, 1.0e-9f64..1.0e-4],
        delays in prop::collection::vec((1.0e-6f64..0.05, 1.0e-6f64..0.05), 1..24),
    ) {
        let mut est = OffsetEstimator::new();
        let mut t = 0.0;
        let mut off = d;
        for &(a, b) in &delays {
            est.add_sample(t, t + a + off, t + a + b);
            t += 1.0;
            off += rate; // one round's worth of skew before the next ping
        }
        prop_assert_eq!(est.samples(), delays.len());
        let rtt = est.rtt().expect("at least one sample");
        let total_drift = rate.abs() * delays.len() as f64;
        prop_assert!(
            (est.offset() - off).abs() <= rtt / 2.0 + total_drift + 1e-9,
            "estimate {} vs drifted true {} exceeds rtt/2 + drift = {}",
            est.offset(), off, rtt / 2.0 + total_drift
        );
    }
}
