//! Property tests for the span profiler's aggregation: whatever nesting a
//! program produces, the aggregated stats must conserve time (every path's
//! total equals the sum of its recorded durations, and a parent's self time
//! plus its children's totals reconstruct the parent's total), and two
//! identical programs driven by the same [`VirtualClock`] schedule must
//! export bit-identical folded stacks.

use std::collections::BTreeMap;

use fluentps_obs::clock::{ClockSource, VirtualClock};
use fluentps_obs::prof::{ProfCollector, ProfMetric};
use fluentps_util::proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One step of a random span program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Open a span with `NAMES[i]`.
    Push(usize),
    /// Close the innermost open span.
    Pop,
    /// Advance the virtual clock by `n` microseconds.
    Advance(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..NAMES.len()).prop_map(Op::Push),
        Just(Op::Pop),
        (1u32..5_000).prop_map(Op::Advance),
    ]
}

/// Run `ops` against a virtual-clock profiler, mirroring every span in a
/// shadow model. Returns the report plus the model's expected per-path
/// (count, total seconds).
fn run_program(ops: &[Op]) -> (fluentps_obs::ProfileReport, BTreeMap<String, (u64, f64)>) {
    let clock = VirtualClock::new();
    let collector = ProfCollector::new(ClockSource::virtual_clock(clock.clone()));
    let prof = collector.profiler();

    let mut guards = Vec::new();
    // Shadow stack of (name, start) and the expected aggregation.
    let mut shadow: Vec<(&str, f64)> = Vec::new();
    let mut expected: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let close_top =
        |shadow: &mut Vec<(&str, f64)>, expected: &mut BTreeMap<String, (u64, f64)>, now: f64| {
            let (_, start) = shadow[shadow.len() - 1];
            let path = shadow.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(";");
            shadow.pop();
            let e = expected.entry(path).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += now - start;
        };

    for op in ops {
        match *op {
            Op::Push(i) => {
                guards.push(prof.enter(NAMES[i]));
                shadow.push((NAMES[i], clock.get()));
            }
            Op::Pop => {
                if let Some(g) = guards.pop() {
                    drop(g);
                    close_top(&mut shadow, &mut expected, clock.get());
                }
            }
            Op::Advance(us) => clock.set(clock.get() + us as f64 * 1e-6),
        }
    }
    // Close everything still open, innermost first.
    while let Some(g) = guards.pop() {
        drop(g);
        close_top(&mut shadow, &mut expected, clock.get());
    }
    (collector.snapshot(), expected)
}

proptest! {
    /// The aggregation is conservation-correct: every path's call count and
    /// total time match the shadow model exactly, self time never exceeds
    /// the total, and a parent's self plus its direct children's totals
    /// reconstruct the parent's total.
    #[test]
    fn aggregation_conserves_time(ops in prop::collection::vec(arb_op(), 1..120)) {
        let (report, expected) = run_program(&ops);

        let paths: Vec<&String> = report.spans.keys().collect();
        prop_assert_eq!(paths.len(), expected.len());
        for (path, stat) in &report.spans {
            let (count, total) = expected[path];
            prop_assert_eq!(stat.count, count, "count for {}", path);
            prop_assert!(
                (stat.total_secs - total).abs() < 1e-9,
                "total for {}: {} vs expected {}", path, stat.total_secs, total
            );
            prop_assert!(stat.self_secs >= 0.0);
            prop_assert!(stat.self_secs <= stat.total_secs + 1e-9);

            // Direct children (paths one level deeper) partition the
            // parent's non-self time.
            let children: f64 = report
                .spans
                .iter()
                .filter(|(k, _)| {
                    k.starts_with(&format!("{path};"))
                        && k.matches(';').count() == path.matches(';').count() + 1
                })
                .map(|(_, s)| s.total_secs)
                .sum();
            prop_assert!(
                (stat.self_secs + children - stat.total_secs).abs() < 1e-9,
                "{}: self {} + children {} != total {}",
                path, stat.self_secs, children, stat.total_secs
            );
        }
    }

    /// Same program, same virtual schedule → bit-identical folded export
    /// for the *time* metric. Virtual time makes the timings a pure
    /// function of the program; allocation counts are NOT covered — they
    /// meter the real allocator, whose behavior (map growth, reused
    /// capacity) differs between a process's first and second run of the
    /// same program (see DESIGN.md §15).
    #[test]
    fn same_schedule_folds_bit_identically(ops in prop::collection::vec(arb_op(), 1..120)) {
        let (ra, _) = run_program(&ops);
        let (rb, _) = run_program(&ops);
        prop_assert_eq!(ra.folded(ProfMetric::SelfTime), rb.folded(ProfMetric::SelfTime));
        // The aggregated call counts and totals agree exactly too.
        let strip = |r: &fluentps_obs::ProfileReport| -> Vec<(String, u64, f64, f64)> {
            r.spans
                .iter()
                .map(|(k, s)| (k.clone(), s.count, s.total_secs, s.self_secs))
                .collect()
        };
        prop_assert_eq!(strip(&ra), strip(&rb));
    }
}
