//! Property tests for causal waterfall assembly: grouping and folding must
//! not care what order events arrived in the trace buffer, duplicate
//! deliveries must fold away without changing the stages, and the tail
//! sampler's drop accounting must balance for every config.

use fluentps_obs::waterfall::{assemble, tail_sample, SamplerConfig, CONTROL_PLANE_BIT};
use fluentps_obs::{EventKind, Trace, TraceEvent, KINDS, NO_ID};
use fluentps_util::proptest::prelude::*;

/// Wrap raw events in a [`Trace`]; `counts`/`dropped` are not consulted by
/// assembly, so zeros suffice.
fn trace_of(events: Vec<TraceEvent>) -> Trace {
    Trace {
        events,
        counts: [0; KINDS],
        dropped: 0,
    }
}

/// An arbitrary stamped-or-not event stream: a small request-id pool (0 =
/// unstamped, one id with the control-plane bit), finite timestamps, every
/// event kind, a few shards/workers/attempts, and coarse byte/progress
/// values so fold-key collisions actually happen.
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    let ids = prop_oneof![Just(0u64), 1u64..4, Just(CONTROL_PLANE_BIT | 7)];
    prop::collection::vec(
        (
            (ids, 0.0f64..10.0, 0.0f64..0.01, 0..KINDS),
            (
                prop_oneof![0u32..3, Just(NO_ID)],
                prop_oneof![0u32..2, Just(NO_ID)],
                0u32..3,
                prop_oneof![Just(0u64), Just(64u64), Just(96u64)],
                0u64..3,
            ),
        ),
        0..48,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(i, ((request_id, ts, dur, kind), (shard, worker, attempt, bytes, progress)))| {
                    TraceEvent {
                        ts,
                        dur,
                        kind: EventKind::ALL[kind],
                        shard,
                        worker,
                        progress,
                        bytes,
                        seq: i as u64,
                        request_id,
                        attempt,
                        ..Default::default()
                    }
                },
            )
            .collect()
    })
}

/// Apply a generated swap list as a permutation (indices taken modulo the
/// vector length) — a shuffle the shrinker can simplify swap by swap.
fn apply_swaps(mut events: Vec<TraceEvent>, swaps: &[(usize, usize)]) -> Vec<TraceEvent> {
    if events.is_empty() {
        return events;
    }
    let n = events.len();
    for &(a, b) in swaps {
        events.swap(a % n, b % n);
    }
    events
}

proptest! {
    /// Assembly is order-insensitive: any permutation of the event stream
    /// yields identical waterfalls (stages, fold counts, ordering) and
    /// identical stamped/unstamped accounting. The trace buffer's arrival
    /// order — reordered by chaos, merged across nodes — must not matter.
    #[test]
    fn assembly_is_order_insensitive(
        events in arb_events(),
        swaps in prop::collection::vec((0usize..4096, 0usize..4096), 0..64),
    ) {
        let shuffled = apply_swaps(events.clone(), &swaps);
        let a = assemble(&trace_of(events));
        let b = assemble(&trace_of(shuffled));
        prop_assert_eq!(a.stamped_events, b.stamped_events);
        prop_assert_eq!(a.unstamped_events, b.unstamped_events);
        prop_assert_eq!(a.waterfalls.len(), b.waterfalls.len());
        for (wa, wb) in a.waterfalls.iter().zip(b.waterfalls.iter()) {
            prop_assert_eq!(wa.request_id, wb.request_id);
            prop_assert_eq!(wa.duplicates_folded, wb.duplicates_folded);
            prop_assert_eq!(&wa.stages, &wb.stages);
        }
    }

    /// Duplicate deliveries are invisible: appending copies of stamped
    /// events with `ts >=` the original's (a FaultInjector duplicate can
    /// only arrive later) leaves every waterfall's stages bit-identical and
    /// grows the fold counters by exactly the number injected.
    #[test]
    fn duplicates_fold_away_with_exact_accounting(
        events in arb_events(),
        picks in prop::collection::vec((0usize..4096, 0.0f64..1.0), 0..12),
    ) {
        let base = assemble(&trace_of(events.clone()));
        let stamped: Vec<TraceEvent> =
            events.iter().filter(|e| e.request_id != 0).copied().collect();
        let mut dups = Vec::new();
        if !stamped.is_empty() {
            for &(idx, delta) in &picks {
                let mut dup = stamped[idx % stamped.len()];
                dup.ts += delta; // never earlier than the original
                dups.push(dup);
            }
        }
        let injected = dups.len() as u64;
        let mut noisy = events;
        noisy.extend(dups);
        let dup_set = assemble(&trace_of(noisy));

        prop_assert_eq!(base.waterfalls.len(), dup_set.waterfalls.len());
        prop_assert_eq!(base.stamped_events, dup_set.stamped_events);
        prop_assert_eq!(base.unstamped_events, dup_set.unstamped_events);
        let base_folded: u64 = base.waterfalls.iter().map(|w| w.duplicates_folded).sum();
        let dup_folded: u64 = dup_set.waterfalls.iter().map(|w| w.duplicates_folded).sum();
        prop_assert_eq!(base_folded + injected, dup_folded);
        for (wa, wb) in base.waterfalls.iter().zip(dup_set.waterfalls.iter()) {
            prop_assert_eq!(wa.request_id, wb.request_id);
            prop_assert_eq!(&wa.stages, &wb.stages);
        }
    }

    /// Drop accounting balances for every sampler config: retained +
    /// sampled_out == observed, the latency histogram saw every request,
    /// and recovery-touched requests are never sampled out.
    #[test]
    fn tail_sampler_balances_for_every_config(
        events in arb_events(),
        top_fraction in prop_oneof![Just(1.0f64), 0.0f64..1.0],
        window_secs in prop_oneof![Just(0.0f64), 1e-3f64..2.0],
    ) {
        let set = assemble(&trace_of(events));
        let sampled = tail_sample(&set, SamplerConfig { top_fraction, window_secs });
        prop_assert!(sampled.balance().is_ok(), "{:?}", sampled.balance());
        prop_assert_eq!(sampled.observed, set.observed());
        prop_assert_eq!(sampled.total_us.count(), set.observed());
        for w in set.waterfalls.iter().filter(|w| w.recovery_touched()) {
            prop_assert!(
                sampled.retained.iter().any(|r| r.request_id == w.request_id),
                "recovery-touched request {} was sampled out", w.request_id
            );
        }
    }
}
