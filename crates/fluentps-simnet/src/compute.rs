//! Per-iteration compute-time models with straggler injection.
//!
//! The paper's motivation: "Even in a load-balanced cluster, some worker
//! nodes are randomly slower than other nodes" (Project Adam's observation,
//! quoted in the introduction). [`WorkerCompute`] models a cluster where
//! every worker has the same nominal per-iteration time plus (1) multiplica-
//! tive jitter, (2) random transient slowdowns, and (3) optional persistent
//! slow nodes — the three straggler flavours the synchronization models are
//! designed around.

use fluentps_util::rng::StdRng;

/// A source of per-iteration compute durations.
pub trait ComputeModel: Send {
    /// Seconds worker `w` spends computing gradients in iteration `iter`.
    fn sample(&mut self, worker: u32, iter: u64) -> f64;
}

/// Straggler configuration for [`WorkerCompute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// Probability that a given (worker, iteration) suffers a transient
    /// slowdown (GC pause, OS jitter, co-tenant burst).
    pub transient_prob: f64,
    /// Multiplier applied during a transient slowdown.
    pub transient_factor: f64,
    /// Number of *persistently* slow workers (always the highest-indexed
    /// ones, so experiments can reason about identity).
    pub persistent_count: u32,
    /// Multiplier applied to persistently slow workers.
    pub persistent_factor: f64,
}

impl StragglerSpec {
    /// No stragglers at all (perfectly balanced cluster).
    pub fn none() -> Self {
        StragglerSpec {
            transient_prob: 0.0,
            transient_factor: 1.0,
            persistent_count: 0,
            persistent_factor: 1.0,
        }
    }

    /// The paper's implicit default: occasional random slowdowns only.
    pub fn random_slowdowns() -> Self {
        StragglerSpec {
            transient_prob: 0.08,
            transient_factor: 3.0,
            persistent_count: 0,
            persistent_factor: 1.0,
        }
    }
}

/// Standard compute model: `base · jitter · straggler-multipliers`.
#[derive(Debug, Clone)]
pub struct WorkerCompute {
    /// Nominal seconds per iteration (already divided by the data-parallel
    /// degree by the caller: more workers → smaller per-worker batch).
    pub base: f64,
    /// Uniform multiplicative jitter: samples lie in `[1, 1 + jitter]`.
    pub jitter: f64,
    /// Straggler behaviour.
    pub stragglers: StragglerSpec,
    num_workers: u32,
    rng: StdRng,
}

impl WorkerCompute {
    /// Model for `num_workers` workers with a seed.
    pub fn new(
        base: f64,
        jitter: f64,
        stragglers: StragglerSpec,
        num_workers: u32,
        seed: u64,
    ) -> Self {
        assert!(base > 0.0 && jitter >= 0.0);
        WorkerCompute {
            base,
            jitter,
            stragglers,
            num_workers,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn is_persistent_straggler(&self, worker: u32) -> bool {
        worker
            >= self
                .num_workers
                .saturating_sub(self.stragglers.persistent_count)
    }
}

impl ComputeModel for WorkerCompute {
    fn sample(&mut self, worker: u32, _iter: u64) -> f64 {
        let mut t = self.base * (1.0 + self.rng.gen::<f64>() * self.jitter);
        if self.rng.gen::<f64>() < self.stragglers.transient_prob {
            t *= self.stragglers.transient_factor;
        }
        if self.is_persistent_straggler(worker) {
            t *= self.stragglers.persistent_factor;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stragglers_no_jitter_is_constant() {
        let mut m = WorkerCompute::new(0.5, 0.0, StragglerSpec::none(), 4, 1);
        for w in 0..4 {
            for i in 0..10 {
                assert_eq!(m.sample(w, i), 0.5);
            }
        }
    }

    #[test]
    fn jitter_bounds_hold() {
        let mut m = WorkerCompute::new(1.0, 0.3, StragglerSpec::none(), 2, 7);
        for i in 0..1000 {
            let t = m.sample(0, i);
            assert!((1.0..=1.3).contains(&t), "t = {t}");
        }
    }

    #[test]
    fn transient_slowdowns_hit_roughly_at_rate() {
        let spec = StragglerSpec {
            transient_prob: 0.2,
            transient_factor: 10.0,
            persistent_count: 0,
            persistent_factor: 1.0,
        };
        let mut m = WorkerCompute::new(1.0, 0.0, spec, 1, 3);
        let slow = (0..5000).filter(|&i| m.sample(0, i) > 5.0).count();
        let rate = slow as f64 / 5000.0;
        assert!((0.15..0.25).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn persistent_stragglers_are_the_top_indices() {
        let spec = StragglerSpec {
            transient_prob: 0.0,
            transient_factor: 1.0,
            persistent_count: 2,
            persistent_factor: 4.0,
        };
        let mut m = WorkerCompute::new(1.0, 0.0, spec, 8, 5);
        assert_eq!(m.sample(0, 0), 1.0);
        assert_eq!(m.sample(5, 0), 1.0);
        assert_eq!(m.sample(6, 0), 4.0);
        assert_eq!(m.sample(7, 0), 4.0);
    }

    #[test]
    fn same_seed_same_samples() {
        let mk = || WorkerCompute::new(1.0, 0.5, StragglerSpec::random_slowdowns(), 4, 99);
        let mut a = mk();
        let mut b = mk();
        for i in 0..100 {
            assert_eq!(a.sample(i % 4, i as u64), b.sample(i % 4, i as u64));
        }
    }
}
