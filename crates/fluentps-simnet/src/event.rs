//! A stable discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`; equal-time events pop
//! in insertion order, which makes every simulation deterministic without
//! requiring the payload to be `Ord`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fluentps_obs::VirtualClock;

struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timed events.
///
/// ```
/// use fluentps_simnet::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.now(), 1.0);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: f64,
    clock: Option<Arc<VirtualClock>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            clock: None,
        }
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Mirror simulated time into `clock` so observers outside the event
    /// loop — typically a `fluentps_obs` trace collector built with
    /// `ClockSource::virtual_clock` — timestamp events in virtual seconds.
    /// The clock is updated on every [`EventQueue::pop`].
    pub fn attach_clock(&mut self, clock: Arc<VirtualClock>) {
        clock.set(self.now);
        self.clock = Some(clock);
    }

    /// Schedule `payload` at absolute time `time`. Scheduling in the past
    /// (before the last popped event) is a logic error and panics in debug
    /// builds; in release it is clamped to `now` to keep time monotone.
    pub fn schedule(&mut self, time: f64, payload: T) {
        debug_assert!(time.is_finite(), "event time must be finite");
        debug_assert!(
            time >= self.now,
            "scheduling into the past: {time} < {}",
            self.now
        );
        let time = time.max(self.now);
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` after a delay relative to `now`.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        let t = self.now + delay.max(0.0);
        self.schedule(t, payload);
    }

    /// Pop the earliest event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        if let Some(clock) = &self.clock {
            clock.set(self.now);
        }
        Some((e.time, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "first");
        q.pop();
        q.schedule_in(2.5, "second");
        assert_eq!(q.pop(), Some((12.5, "second")));
    }

    #[test]
    fn time_never_goes_backwards_on_clamped_schedule() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 1);
        q.pop();
        // Negative delay clamps to now.
        q.schedule_in(-5.0, 2);
        assert_eq!(q.pop(), Some((10.0, 2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn attached_clock_tracks_simulated_time() {
        let clock = VirtualClock::new();
        let mut q = EventQueue::new();
        q.schedule(4.0, "a");
        q.schedule(9.0, "b");
        q.attach_clock(Arc::clone(&clock));
        assert_eq!(clock.get(), 0.0);
        q.pop();
        assert_eq!(clock.get(), 4.0);
        q.pop();
        assert_eq!(clock.get(), 9.0);
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut order = Vec::new();
            q.schedule(1.0, 0u32);
            q.schedule(1.0, 1);
            while let Some((t, id)) = q.pop() {
                order.push(id);
                if id < 8 {
                    q.schedule(t, id + 2); // same-time cascade
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}
