//! Deterministic discrete-event cluster simulator.
//!
//! The paper's timing results (Figure 6's computation/communication split,
//! the per-100-iteration times of Table IV, the accuracy-vs-time curves of
//! Figures 8/10/11) are properties of *event ordering and queueing*: who
//! waits on whom, how transfers serialize at a server's NIC, how stragglers
//! delay barriers. This crate provides exactly those pieces:
//!
//! * [`event`] — a stable priority queue over simulated time (ties broken by
//!   insertion order, so runs are bit-for-bit reproducible).
//! * [`compute`] — per-iteration compute-time models with straggler
//!   injection (random slowdowns, persistent slow nodes, heavy tails).
//! * [`net`] — latency/bandwidth links and serializing NIC queues.
//! * [`topology`] — a cluster of N workers and M servers wired through those
//!   NICs, with communication-time accounting per node.
//!
//! Simulated time is `f64` seconds. All randomness is seeded.

#![warn(missing_docs)]

pub mod compute;
pub mod event;
pub mod net;
pub mod topology;
pub mod trace;

pub use compute::{ComputeModel, StragglerSpec, WorkerCompute};
pub use event::EventQueue;
pub use net::{LinkModel, NicQueue};
pub use topology::ClusterTopology;
