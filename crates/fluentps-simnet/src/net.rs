//! Network primitives: latency/bandwidth links and serializing NIC queues.
//!
//! The communication bottleneck the paper measures (Figure 6) comes from
//! transfers *serializing at the server side*: with N workers pushing a
//! gradient shard each, the server's NIC drains them one after another, so
//! communication time grows with N while computation time shrinks. The
//! [`NicQueue`] models that serialization point.

/// A point-to-point link with propagation latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way propagation latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkModel {
    /// A 1 Gbps link with 100 µs latency (the paper's CPU-cluster NICs).
    pub fn gbe() -> Self {
        LinkModel {
            latency: 100e-6,
            bandwidth: 125e6,
        }
    }

    /// A 25 Gbps link with 50 µs latency (the paper's AWS GPU cluster).
    pub fn aws_25g() -> Self {
        LinkModel {
            latency: 50e-6,
            bandwidth: 3.125e9,
        }
    }

    /// Time to push `bytes` through the link once it starts transmitting.
    pub fn serialization_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// End-to-end time for an uncontended transfer.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + self.serialization_time(bytes)
    }
}

/// A serializing queue (NIC / link endpoint): at most one transfer drains at
/// a time; later arrivals wait behind earlier ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicQueue {
    busy_until: f64,
    /// Total seconds this NIC spent transmitting (utilization accounting).
    pub busy_time: f64,
    /// Total bytes through this NIC.
    pub bytes: u64,
}

impl NicQueue {
    /// Fresh, idle NIC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a transfer arriving at `now` that needs `duration` seconds of
    /// link time. Returns the completion time.
    pub fn enqueue(&mut self, now: f64, duration: f64, bytes: u64) -> f64 {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_time += duration;
        self.bytes += bytes;
        end
    }

    /// When the NIC becomes idle.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_composes_latency_and_bandwidth() {
        let l = LinkModel {
            latency: 0.001,
            bandwidth: 1000.0,
        };
        assert!((l.transfer_time(500) - 0.501).abs() < 1e-12);
        assert_eq!(l.serialization_time(2000), 2.0);
    }

    #[test]
    fn nic_serializes_overlapping_transfers() {
        let mut nic = NicQueue::new();
        // Three transfers arrive at t=0, each taking 1s: they drain back to
        // back, finishing at 1, 2, 3.
        assert_eq!(nic.enqueue(0.0, 1.0, 100), 1.0);
        assert_eq!(nic.enqueue(0.0, 1.0, 100), 2.0);
        assert_eq!(nic.enqueue(0.0, 1.0, 100), 3.0);
        assert_eq!(nic.busy_time, 3.0);
        assert_eq!(nic.bytes, 300);
    }

    #[test]
    fn idle_gaps_are_not_counted_busy() {
        let mut nic = NicQueue::new();
        nic.enqueue(0.0, 0.5, 10);
        // Arrives after the NIC went idle.
        let end = nic.enqueue(10.0, 0.5, 10);
        assert_eq!(end, 10.5);
        assert_eq!(nic.busy_time, 1.0);
    }

    #[test]
    fn completion_grows_linearly_with_contenders() {
        // The Figure 6 mechanism in miniature: N pushes of equal size all
        // arriving together finish at N · t each worker's wait grows with N.
        let per = 0.25;
        for n in [1usize, 2, 4, 8] {
            let mut nic = NicQueue::new();
            let mut last = 0.0;
            for _ in 0..n {
                last = nic.enqueue(0.0, per, 1);
            }
            assert!((last - per * n as f64).abs() < 1e-12);
        }
    }
}
