//! Cluster topology: N workers and M servers joined by links through
//! serializing NICs, with per-side communication-time accounting.
//!
//! Model: a worker→server transfer traverses the worker's egress NIC, the
//! link, and the server's ingress NIC; the bottleneck (and the quantity the
//! paper's Figure 6 measures) is the serialization at the server side, so
//! ingress/egress NICs are tracked per server while worker NICs are assumed
//! uncontended (each worker talks to M servers sequentially anyway).

use crate::net::{LinkModel, NicQueue};

/// How a server moves bytes in and out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duplex {
    /// Ingress and egress drain concurrently (FluentPS: push handling and
    /// pull responses overlap — the paper's "overlap synchronization").
    Full,
    /// One serialization point for both directions (PS-Lite's
    /// single-threaded request loop: a pull response cannot be sent while a
    /// push is being received/applied).
    Half,
}

/// A simulated cluster fabric.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    link: LinkModel,
    duplex: Duplex,
    server_ingress: Vec<NicQueue>,
    server_egress: Vec<NicQueue>,
}

impl ClusterTopology {
    /// Fabric for `num_servers` full-duplex servers over `link`.
    pub fn new(num_servers: u32, link: LinkModel) -> Self {
        Self::with_duplex(num_servers, link, Duplex::Full)
    }

    /// Fabric with an explicit duplex mode.
    pub fn with_duplex(num_servers: u32, link: LinkModel, duplex: Duplex) -> Self {
        ClusterTopology {
            link,
            duplex,
            server_ingress: vec![NicQueue::new(); num_servers as usize],
            server_egress: vec![NicQueue::new(); num_servers as usize],
        }
    }

    /// The link model in use.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// A worker sends `bytes` to server `m` at time `now`; returns the
    /// arrival (fully received) time.
    pub fn worker_to_server(&mut self, now: f64, m: u32, bytes: usize) -> f64 {
        let duration = self.link.serialization_time(bytes);
        let after_latency = now + self.link.latency;
        self.server_ingress[m as usize].enqueue(after_latency, duration, bytes as u64)
    }

    /// Server `m` sends `bytes` to a worker at time `now`; returns delivery
    /// time.
    pub fn server_to_worker(&mut self, now: f64, m: u32, bytes: usize) -> f64 {
        let duration = self.link.serialization_time(bytes);
        let queue = match self.duplex {
            Duplex::Full => &mut self.server_egress[m as usize],
            // Half duplex: responses contend with incoming pushes.
            Duplex::Half => &mut self.server_ingress[m as usize],
        };
        let end = queue.enqueue(now, duration, bytes as u64);
        end + self.link.latency
    }

    /// Occupy server `m`'s request-processing queue for `seconds` starting
    /// at `now` (models per-request CPU work on the single-threaded server:
    /// DPR buffer management, callback registration, cache invalidation).
    /// Subsequent arrivals at this server queue behind it.
    pub fn charge_server(&mut self, now: f64, m: u32, seconds: f64) {
        self.server_ingress[m as usize].enqueue(now, seconds, 0);
    }

    /// Seconds server `m`'s NICs spent transmitting (ingress + egress) — the
    /// per-server communication-time figure.
    pub fn server_comm_time(&self, m: u32) -> f64 {
        self.server_ingress[m as usize].busy_time + self.server_egress[m as usize].busy_time
    }

    /// Total bytes through server `m`.
    pub fn server_bytes(&self, m: u32) -> u64 {
        self.server_ingress[m as usize].bytes + self.server_egress[m as usize].bytes
    }

    /// Aggregate communication time over all servers.
    pub fn total_comm_time(&self) -> f64 {
        (0..self.server_ingress.len() as u32)
            .map(|m| self.server_comm_time(m))
            .sum()
    }

    /// The busiest server's communication time — the critical-path figure
    /// when shards are imbalanced (what EPS reduces).
    pub fn max_server_comm_time(&self) -> f64 {
        (0..self.server_ingress.len() as u32)
            .map(|m| self.server_comm_time(m))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_link() -> LinkModel {
        LinkModel {
            latency: 0.0,
            bandwidth: 1000.0,
        }
    }

    #[test]
    fn pushes_serialize_at_one_server() {
        let mut topo = ClusterTopology::new(2, fast_link());
        // 4 workers push 500 bytes to server 0 simultaneously: 0.5 s each,
        // arriving at 0.5, 1.0, 1.5, 2.0.
        let mut arrivals = Vec::new();
        for _ in 0..4 {
            arrivals.push(topo.worker_to_server(0.0, 0, 500));
        }
        assert_eq!(arrivals, vec![0.5, 1.0, 1.5, 2.0]);
        // Server 1 is unaffected.
        assert_eq!(topo.worker_to_server(0.0, 1, 500), 0.5);
    }

    #[test]
    fn balanced_shards_beat_imbalanced_on_critical_path() {
        // Imbalanced: all 4000 bytes on server 0. Balanced: 2000 each.
        let mut imb = ClusterTopology::new(2, fast_link());
        for _ in 0..4 {
            imb.worker_to_server(0.0, 0, 1000);
        }
        let mut bal = ClusterTopology::new(2, fast_link());
        for _ in 0..4 {
            bal.worker_to_server(0.0, 0, 500);
            bal.worker_to_server(0.0, 1, 500);
        }
        assert!(bal.max_server_comm_time() < imb.max_server_comm_time());
        // Same total bytes moved either way.
        assert_eq!(
            imb.server_bytes(0) + imb.server_bytes(1),
            bal.server_bytes(0) + bal.server_bytes(1)
        );
    }

    #[test]
    fn latency_applies_before_ingress_queueing() {
        let link = LinkModel {
            latency: 1.0,
            bandwidth: 1000.0,
        };
        let mut topo = ClusterTopology::new(1, link);
        assert_eq!(topo.worker_to_server(0.0, 0, 1000), 2.0); // 1 latency + 1 xfer
    }

    #[test]
    fn responses_queue_at_server_egress() {
        let mut topo = ClusterTopology::new(1, fast_link());
        let a = topo.server_to_worker(0.0, 0, 1000);
        let b = topo.server_to_worker(0.0, 0, 1000);
        assert_eq!(a, 1.0);
        assert_eq!(b, 2.0);
        assert_eq!(topo.server_comm_time(0), 2.0);
    }

    #[test]
    fn half_duplex_serializes_both_directions() {
        let mut full = ClusterTopology::with_duplex(1, fast_link(), Duplex::Full);
        let f_in = full.worker_to_server(0.0, 0, 1000);
        let f_out = full.server_to_worker(0.0, 0, 1000);
        // Full duplex: both finish at 1s (concurrent).
        assert_eq!(f_in, 1.0);
        assert_eq!(f_out, 1.0);

        let mut half = ClusterTopology::with_duplex(1, fast_link(), Duplex::Half);
        let h_in = half.worker_to_server(0.0, 0, 1000);
        let h_out = half.server_to_worker(0.0, 0, 1000);
        // Half duplex: the response queues behind the push.
        assert_eq!(h_in, 1.0);
        assert_eq!(h_out, 2.0);
    }

    #[test]
    fn comm_time_accounting_sums_sides() {
        let mut topo = ClusterTopology::new(2, fast_link());
        topo.worker_to_server(0.0, 0, 500);
        topo.server_to_worker(0.0, 0, 500);
        topo.worker_to_server(0.0, 1, 1000);
        assert!((topo.server_comm_time(0) - 1.0).abs() < 1e-12);
        assert!((topo.server_comm_time(1) - 1.0).abs() < 1e-12);
        assert!((topo.total_comm_time() - 2.0).abs() < 1e-12);
        assert!((topo.max_server_comm_time() - 1.0).abs() < 1e-12);
    }
}
