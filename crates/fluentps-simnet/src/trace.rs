//! Event-trace recording for simulation runs.
//!
//! A [`TraceRecorder`] collects `(time, kind, node)` tuples during a run and
//! summarizes them: per-kind counts, per-node activity, the busiest window.
//! Used by the experiment drivers for debugging pathological schedules and
//! by tests asserting structural properties of a run (e.g. "no pull response
//! ever precedes its push under BSP").

/// Categories of simulation events worth tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A worker finished computing an iteration.
    ComputeDone,
    /// A push arrived at a server.
    PushArrive,
    /// A pull request arrived at a server.
    PullArrive,
    /// A pull was deferred into the DPR buffer.
    PullDeferred,
    /// A (possibly lazy) pull response left a server.
    ResponseSent,
    /// `V_train` advanced on some shard.
    VTrainAdvance,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time.
    pub time: f64,
    /// Event category.
    pub kind: TraceKind,
    /// Node index the event is attributed to (worker or server id).
    pub node: u32,
}

/// A bounded in-memory event trace.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Recorder keeping at most `capacity` events (older events are kept;
    /// overflow is counted, not silently lost).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event.
    pub fn record(&mut self, time: f64, kind: TraceKind, node: u32) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { time, kind, node });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of events of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// The densest window of `width` seconds: `(start, events-in-window)`.
    /// Useful for spotting synchronization storms (barrier bursts).
    pub fn busiest_window(&self, width: f64) -> Option<(f64, usize)> {
        if self.events.is_empty() {
            return None;
        }
        let mut times: Vec<f64> = self.events.iter().map(|e| e.time).collect();
        times.sort_by(f64::total_cmp);
        let mut best = (times[0], 1usize);
        let mut lo = 0usize;
        for hi in 0..times.len() {
            while times[hi] - times[lo] > width {
                lo += 1;
            }
            let count = hi - lo + 1;
            if count > best.1 {
                best = (times[lo], count);
            }
        }
        Some(best)
    }

    /// Per-kind histogram, sorted by kind for deterministic output.
    pub fn histogram(&self) -> Vec<(TraceKind, usize)> {
        use TraceKind::*;
        [
            ComputeDone,
            PushArrive,
            PullArrive,
            PullDeferred,
            ResponseSent,
            VTrainAdvance,
        ]
        .iter()
        .map(|&k| (k, self.count(k)))
        .filter(|(_, c)| *c > 0)
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut t = TraceRecorder::new(16);
        t.record(0.0, TraceKind::ComputeDone, 0);
        t.record(0.5, TraceKind::PushArrive, 1);
        t.record(0.6, TraceKind::PushArrive, 1);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.count(TraceKind::PushArrive), 2);
        assert_eq!(t.count(TraceKind::PullArrive), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_overflow_is_counted() {
        let mut t = TraceRecorder::new(2);
        for i in 0..5 {
            t.record(i as f64, TraceKind::ComputeDone, 0);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn busiest_window_finds_the_burst() {
        let mut t = TraceRecorder::new(64);
        // Sparse events, then a burst at t≈10.
        for i in 0..5 {
            t.record(i as f64, TraceKind::ComputeDone, 0);
        }
        for i in 0..10 {
            t.record(10.0 + i as f64 * 0.01, TraceKind::ResponseSent, 1);
        }
        let (start, count) = t.busiest_window(0.5).expect("non-empty");
        assert!((start - 10.0).abs() < 0.01);
        assert_eq!(count, 10);
    }

    #[test]
    fn empty_trace_has_no_window() {
        let t = TraceRecorder::new(4);
        assert!(t.busiest_window(1.0).is_none());
        assert!(t.histogram().is_empty());
    }

    #[test]
    fn histogram_is_deterministic_and_sparse() {
        let mut t = TraceRecorder::new(8);
        t.record(0.0, TraceKind::VTrainAdvance, 0);
        t.record(0.0, TraceKind::ComputeDone, 0);
        t.record(0.0, TraceKind::ComputeDone, 1);
        let h = t.histogram();
        assert_eq!(
            h,
            vec![(TraceKind::ComputeDone, 2), (TraceKind::VTrainAdvance, 1)]
        );
    }
}
