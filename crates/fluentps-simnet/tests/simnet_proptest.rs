//! Property tests for the simulator primitives.

use fluentps_simnet::event::EventQueue;
use fluentps_simnet::net::{LinkModel, NicQueue};
use fluentps_simnet::topology::{ClusterTopology, Duplex};
use fluentps_util::proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order, and ties pop in insertion order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0.0f64..100.0, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = f64::NAN;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == prev_t {
                // Stability: insertion ids at equal times are increasing.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < id));
                seen_at_time.push(id);
            } else {
                seen_at_time = vec![id];
                prev_t = t;
            }
            last_time = t;
        }
        prop_assert_eq!(q.now(), last_time);
    }

    /// NIC conservation: completions never overlap (each transfer occupies
    /// exclusive link time) and busy_time equals the sum of durations.
    #[test]
    fn nic_transfers_never_overlap(
        jobs in prop::collection::vec((0.0f64..50.0, 0.01f64..2.0), 1..40)
    ) {
        let mut nic = NicQueue::new();
        // Arrivals must be fed in non-decreasing time order (as the event
        // loop does); sort to honour the contract.
        let mut jobs = jobs;
        jobs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev_end = f64::NEG_INFINITY;
        let mut total = 0.0;
        for &(arrive, dur) in &jobs {
            let end = nic.enqueue(arrive, dur, 1);
            // The transfer ends after it arrived and after the previous one.
            prop_assert!(end >= arrive + dur - 1e-12);
            prop_assert!(end >= prev_end + dur - 1e-12);
            prev_end = end;
            total += dur;
        }
        prop_assert!((nic.busy_time - total).abs() < 1e-9);
        prop_assert_eq!(nic.bytes, jobs.len() as u64);
    }

    /// Half duplex is never faster than full duplex for the same traffic.
    #[test]
    fn half_duplex_dominates_full(
        ops in prop::collection::vec((0.0f64..10.0, 1usize..10_000, any::<bool>()), 1..30)
    ) {
        let link = LinkModel { latency: 0.0, bandwidth: 1e6 };
        let mut full = ClusterTopology::with_duplex(1, link, Duplex::Full);
        let mut half = ClusterTopology::with_duplex(1, link, Duplex::Half);
        let mut ops = ops;
        ops.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, bytes, inbound) in &ops {
            let (f, h) = if inbound {
                (
                    full.worker_to_server(t, 0, bytes),
                    half.worker_to_server(t, 0, bytes),
                )
            } else {
                (
                    full.server_to_worker(t, 0, bytes),
                    half.server_to_worker(t, 0, bytes),
                )
            };
            prop_assert!(h >= f - 1e-12, "half {h} finished before full {f}");
        }
    }
}
