//! Hand-rolled binary wire codec.
//!
//! Layout: one version byte, one tag byte, then little-endian fields. Vectors
//! are a `u32` count followed by elements. `f32` travels as its IEEE-754 bit
//! pattern. The codec is fully self-contained (no serde) because the offline
//! dependency set has no serialization *format* crate; this also keeps frames
//! compact and decode costs predictable, which matters because gradients for
//! large layers dominate traffic.

use fluentps_obs::{EventKind, TraceEvent};
use fluentps_util::buf::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DecodeError;
use crate::msg::{CausalCtx, KvPairs, Message, NodeId, WireLogEntry, WirePlacement};

/// Version byte prepended to every encoded message.
pub const WIRE_VERSION: u8 = 1;

/// Sanity cap on any declared element count, to reject corrupt frames before
/// attempting a huge allocation. 2^28 f32s is a 1 GiB tensor — far beyond any
/// shard this system ships.
const MAX_ELEMS: u64 = 1 << 28;

mod tag {
    pub const SPUSH: u8 = 1;
    pub const SPULL: u8 = 2;
    pub const PUSH_ACK: u8 = 3;
    pub const PULL_RESPONSE: u8 = 4;
    pub const REGISTER: u8 = 5;
    pub const REGISTER_ACK: u8 = 6;
    pub const HEARTBEAT: u8 = 7;
    pub const BARRIER: u8 = 8;
    pub const SHUTDOWN: u8 = 9;
    pub const INSTALL: u8 = 10;
    pub const ROUTE_UPDATE: u8 = 11;
    pub const TRACE_BATCH: u8 = 12;
    pub const CLOCK_PING: u8 = 13;
    pub const CLOCK_PONG: u8 = 14;
    pub const VOTE_REQUEST: u8 = 15;
    pub const VOTE_RESPONSE: u8 = 16;
    pub const APPEND_ENTRIES: u8 = 17;
    pub const APPEND_ACK: u8 = 18;
    pub const LEADER_REDIRECT: u8 = 19;
    pub const TRACED: u8 = 20;
}

mod node_tag {
    pub const SCHEDULER: u8 = 0;
    pub const SERVER: u8 = 1;
    pub const WORKER: u8 = 2;
    pub const COLLECTOR: u8 = 3;
    pub const SUPERVISOR: u8 = 4;
}

/// Encoded size of one [`TraceEvent`]: two f64 bit patterns, the kind index
/// byte, two u32 actor ids, four u64 logical fields, and the causal context
/// (`request_id` u64, `attempt` u32, `parent_span` u32).
const EVENT_WIRE_LEN: usize = 8 + 8 + 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4;

/// Encode a message into a fresh byte buffer, sized exactly via
/// [`encoded_len`] so encoding never reallocates mid-write (the old
/// `payload_bytes() + 16` estimate under-counted KV-heavy messages and
/// forced a mid-encode reallocation on the hot path).
pub fn encode(msg: &Message) -> Bytes {
    let exact = encoded_len(msg);
    let mut buf = BytesMut::with_capacity(exact);
    let cap_before = buf.capacity();
    encode_into(msg, &mut buf);
    debug_assert_eq!(buf.len(), exact, "encoded_len out of sync with encode");
    debug_assert_eq!(
        buf.capacity(),
        cap_before,
        "encode reallocated: reserve was under-sized"
    );
    buf.freeze()
}

/// Encode a message, appending to `buf`.
pub fn encode_into(msg: &Message, buf: &mut BytesMut) {
    buf.put_u8(WIRE_VERSION);
    match msg {
        Message::SPush {
            worker,
            progress,
            kv,
        } => {
            buf.put_u8(tag::SPUSH);
            buf.put_u32_le(*worker);
            buf.put_u64_le(*progress);
            put_kv(buf, kv);
        }
        Message::SPull {
            worker,
            progress,
            keys,
        } => {
            buf.put_u8(tag::SPULL);
            buf.put_u32_le(*worker);
            buf.put_u64_le(*progress);
            put_u64_vec(buf, keys);
        }
        Message::PushAck { server, progress } => {
            buf.put_u8(tag::PUSH_ACK);
            buf.put_u32_le(*server);
            buf.put_u64_le(*progress);
        }
        Message::PullResponse {
            server,
            progress,
            kv,
            version,
        } => {
            buf.put_u8(tag::PULL_RESPONSE);
            buf.put_u32_le(*server);
            buf.put_u64_le(*progress);
            buf.put_u64_le(*version);
            put_kv(buf, kv);
        }
        Message::Register { node } => {
            buf.put_u8(tag::REGISTER);
            put_node(buf, *node);
        }
        Message::RegisterAck {
            num_workers,
            num_servers,
        } => {
            buf.put_u8(tag::REGISTER_ACK);
            buf.put_u32_le(*num_workers);
            buf.put_u32_le(*num_servers);
        }
        Message::Heartbeat { node, seq } => {
            buf.put_u8(tag::HEARTBEAT);
            put_node(buf, *node);
            buf.put_u64_le(*seq);
        }
        Message::Barrier { group, seq } => {
            buf.put_u8(tag::BARRIER);
            buf.put_u32_le(*group);
            buf.put_u64_le(*seq);
        }
        Message::Shutdown => {
            buf.put_u8(tag::SHUTDOWN);
        }
        Message::Install { kv } => {
            buf.put_u8(tag::INSTALL);
            put_kv(buf, kv);
        }
        Message::RouteUpdate { placements } => {
            buf.put_u8(tag::ROUTE_UPDATE);
            buf.put_u32_le(placements.len() as u32);
            for p in placements {
                buf.put_u64_le(p.orig_key);
                buf.put_u64_le(p.new_key);
                buf.put_u32_le(p.server);
                buf.put_u32_le(p.offset);
                buf.put_u32_le(p.len);
            }
        }
        Message::TraceBatch {
            node,
            offset_secs,
            batch_seq,
            emitted,
            dropped,
            events,
        } => {
            buf.put_u8(tag::TRACE_BATCH);
            put_node(buf, *node);
            buf.put_u64_le(offset_secs.to_bits());
            buf.put_u64_le(*batch_seq);
            buf.put_u64_le(*emitted);
            buf.put_u64_le(*dropped);
            buf.put_u32_le(events.len() as u32);
            for e in events {
                put_event(buf, e);
            }
        }
        Message::ClockPing { node, seq, t_send } => {
            buf.put_u8(tag::CLOCK_PING);
            put_node(buf, *node);
            buf.put_u64_le(*seq);
            buf.put_u64_le(t_send.to_bits());
        }
        Message::ClockPong {
            seq,
            t_send,
            t_collector,
        } => {
            buf.put_u8(tag::CLOCK_PONG);
            buf.put_u64_le(*seq);
            buf.put_u64_le(t_send.to_bits());
            buf.put_u64_le(t_collector.to_bits());
        }
        Message::VoteRequest {
            term,
            candidate,
            last_log_index,
            last_log_term,
        } => {
            buf.put_u8(tag::VOTE_REQUEST);
            buf.put_u64_le(*term);
            buf.put_u32_le(*candidate);
            buf.put_u64_le(*last_log_index);
            buf.put_u64_le(*last_log_term);
        }
        Message::VoteResponse {
            term,
            voter,
            granted,
        } => {
            buf.put_u8(tag::VOTE_RESPONSE);
            buf.put_u64_le(*term);
            buf.put_u32_le(*voter);
            buf.put_u8(u8::from(*granted));
        }
        Message::AppendEntries {
            term,
            leader,
            prev_index,
            prev_term,
            commit,
            entries,
        } => {
            buf.put_u8(tag::APPEND_ENTRIES);
            buf.put_u64_le(*term);
            buf.put_u32_le(*leader);
            buf.put_u64_le(*prev_index);
            buf.put_u64_le(*prev_term);
            buf.put_u64_le(*commit);
            buf.put_u32_le(entries.len() as u32);
            for e in entries {
                buf.put_u64_le(e.term);
                buf.put_u64_le(e.index);
                buf.put_u32_le(e.cmd.len() as u32);
                buf.extend_from_slice(&e.cmd);
            }
        }
        Message::AppendAck {
            term,
            follower,
            ok,
            match_index,
        } => {
            buf.put_u8(tag::APPEND_ACK);
            buf.put_u64_le(*term);
            buf.put_u32_le(*follower);
            buf.put_u8(u8::from(*ok));
            buf.put_u64_le(*match_index);
        }
        Message::LeaderRedirect { term, leader } => {
            buf.put_u8(tag::LEADER_REDIRECT);
            buf.put_u64_le(*term);
            buf.put_u32_le(*leader);
        }
        Message::Traced { ctx, inner } => {
            buf.put_u8(tag::TRACED);
            buf.put_u64_le(ctx.request_id);
            buf.put_u16_le(ctx.attempt);
            buf.put_u32_le(ctx.parent_span);
            // The inner message is a complete encoded message (its own
            // version byte included), so a receiver peels the envelope and
            // re-enters the ordinary decode path.
            encode_into(inner, buf);
        }
    }
}

/// Exact size in bytes of `encode(msg)` — what this message costs on the
/// wire before framing. Byte accounting (`ShardStats::bytes_in/out`, the
/// tracer's `WireSend`/`WireRecv` events) uses this instead of
/// hand-estimates so ablation tables match real traffic.
pub fn encoded_len(msg: &Message) -> usize {
    let header = 2; // version + tag
    header
        + match msg {
            Message::SPush { kv, .. } => 4 + 8 + kv_encoded_len(kv),
            Message::SPull { keys, .. } => 4 + 8 + 4 + 8 * keys.len(),
            Message::PushAck { .. } => 4 + 8,
            Message::PullResponse { kv, .. } => 4 + 8 + 8 + kv_encoded_len(kv),
            Message::Register { .. } => 5,
            Message::RegisterAck { .. } => 4 + 4,
            Message::Heartbeat { .. } => 5 + 8,
            Message::Barrier { .. } => 4 + 8,
            Message::Shutdown => 0,
            Message::Install { kv } => kv_encoded_len(kv),
            Message::RouteUpdate { placements } => 4 + 28 * placements.len(),
            Message::TraceBatch { events, .. } => {
                5 + 8 + 8 + 8 + 8 + 4 + EVENT_WIRE_LEN * events.len()
            }
            Message::ClockPing { .. } => 5 + 8 + 8,
            Message::ClockPong { .. } => 8 + 8 + 8,
            Message::VoteRequest { .. } => 8 + 4 + 8 + 8,
            Message::VoteResponse { .. } => 8 + 4 + 1,
            Message::AppendEntries { entries, .. } => {
                8 + 4
                    + 8
                    + 8
                    + 8
                    + 4
                    + entries
                        .iter()
                        .map(|e| LOG_ENTRY_HEADER_LEN + e.cmd.len())
                        .sum::<usize>()
            }
            Message::AppendAck { .. } => 8 + 4 + 1 + 8,
            Message::LeaderRedirect { .. } => 8 + 4,
            // ctx (request_id + attempt + parent_span) followed by the
            // complete inner encoding, inner header included.
            Message::Traced { inner, .. } => 8 + 2 + 4 + encoded_len(inner),
        }
}

/// Fixed-size prefix of one encoded [`WireLogEntry`]: term, index and the
/// command byte count. Doubles as the per-element lower bound fed to
/// [`check_len`] when decoding an `AppendEntries` entry vector.
const LOG_ENTRY_HEADER_LEN: usize = 8 + 8 + 4;

fn kv_encoded_len(kv: &KvPairs) -> usize {
    (4 + 8 * kv.keys.len()) + (4 + 4 * kv.lens.len()) + (4 + 4 * kv.vals.len())
}

/// Encoded size of an `SPull` carrying `num_keys` keys, without building
/// the message.
pub fn spull_wire_len(num_keys: usize) -> usize {
    2 + 4 + 8 + 4 + 8 * num_keys
}

/// Encoded size of an `SPush` carrying `kv`, without building the message.
pub fn spush_wire_len(kv: &KvPairs) -> usize {
    2 + 4 + 8 + kv_encoded_len(kv)
}

/// [`spush_wire_len`] from entry counts alone — for simulations that model
/// payload sizes without materializing values (`num_keys` keys, each with a
/// length entry, and `num_vals` total f32 values).
pub fn spush_wire_len_counts(num_keys: usize, num_vals: usize) -> usize {
    2 + 4 + 8 + kv_encoded_len_counts(num_keys, num_vals)
}

/// [`pull_response_wire_len`] from entry counts alone.
pub fn pull_response_wire_len_counts(num_keys: usize, num_vals: usize) -> usize {
    2 + 4 + 8 + 8 + kv_encoded_len_counts(num_keys, num_vals)
}

fn kv_encoded_len_counts(num_keys: usize, num_vals: usize) -> usize {
    (4 + 8 * num_keys) + (4 + 4 * num_keys) + (4 + 4 * num_vals)
}

/// Encoded size of a `PullResponse` carrying `kv`, without building the
/// message.
pub fn pull_response_wire_len(kv: &KvPairs) -> usize {
    2 + 4 + 8 + 8 + kv_encoded_len(kv)
}

/// Copy `frame` with the byte at `idx` overwritten by `val` — the shared
/// corruption helper for codec tests (unit and property-based): every
/// "flip one byte, expect a decode error" case routes through here instead
/// of hand-rolling its own `to_vec` + index dance.
///
/// Panics when `idx` is out of bounds or `val` equals the byte already
/// there: a no-op "corruption" would silently test nothing.
pub fn corrupt_at(frame: &Bytes, idx: usize, val: u8) -> Bytes {
    assert!(
        idx < frame.len(),
        "corrupt_at: index {idx} out of bounds for {}-byte frame",
        frame.len()
    );
    assert_ne!(
        frame[idx], val,
        "corrupt_at: byte {idx} is already {val:#04x}; corruption would be a no-op"
    );
    let mut bytes = frame.as_ref().to_vec();
    bytes[idx] = val;
    Bytes::from(bytes)
}

/// Decode one message from `bytes`; the buffer must contain exactly one
/// encoded message (framing is the transport's job), so leftover bytes are
/// a [`DecodeError::TrailingBytes`] error — without this check a corrupted
/// tag byte could silently misparse a long message as a short one.
pub fn decode(mut bytes: Bytes) -> Result<Message, DecodeError> {
    let msg = decode_from(&mut bytes)?;
    if bytes.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(bytes.remaining()));
    }
    Ok(msg)
}

/// [`decode`] from a borrowed slice — the zero-copy read path: a reader
/// that keeps one reusable buffer per connection decodes each frame in
/// place instead of copying it into an owned [`Bytes`] first. Enforces the
/// same exactly-one-message contract as [`decode`].
pub fn decode_slice(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut cursor = bytes;
    let msg = decode_from(&mut cursor)?;
    if cursor.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(cursor.remaining()));
    }
    Ok(msg)
}

/// Decode one message from any [`Buf`] cursor.
pub fn decode_from<B: Buf>(buf: &mut B) -> Result<Message, DecodeError> {
    let version = get_u8(buf)?;
    if version != WIRE_VERSION {
        return Err(DecodeError::VersionMismatch {
            expected: WIRE_VERSION,
            found: version,
        });
    }
    let t = get_u8(buf)?;
    let msg = match t {
        tag::SPUSH => Message::SPush {
            worker: get_u32(buf)?,
            progress: get_u64(buf)?,
            kv: get_kv(buf)?,
        },
        tag::SPULL => Message::SPull {
            worker: get_u32(buf)?,
            progress: get_u64(buf)?,
            keys: get_u64_vec(buf)?,
        },
        tag::PUSH_ACK => Message::PushAck {
            server: get_u32(buf)?,
            progress: get_u64(buf)?,
        },
        tag::PULL_RESPONSE => Message::PullResponse {
            server: get_u32(buf)?,
            progress: get_u64(buf)?,
            version: get_u64(buf)?,
            kv: get_kv(buf)?,
        },
        tag::REGISTER => Message::Register {
            node: get_node(buf)?,
        },
        tag::REGISTER_ACK => Message::RegisterAck {
            num_workers: get_u32(buf)?,
            num_servers: get_u32(buf)?,
        },
        tag::HEARTBEAT => Message::Heartbeat {
            node: get_node(buf)?,
            seq: get_u64(buf)?,
        },
        tag::BARRIER => Message::Barrier {
            group: get_u32(buf)?,
            seq: get_u64(buf)?,
        },
        tag::SHUTDOWN => Message::Shutdown,
        tag::TRACE_BATCH => {
            let node = get_node(buf)?;
            let offset_secs = f64::from_bits(get_u64(buf)?);
            let batch_seq = get_u64(buf)?;
            let emitted = get_u64(buf)?;
            let dropped = get_u64(buf)?;
            let count = get_u32(buf)? as u64;
            let n = check_len(buf, count, EVENT_WIRE_LEN)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(get_event(buf)?);
            }
            Message::TraceBatch {
                node,
                offset_secs,
                batch_seq,
                emitted,
                dropped,
                events,
            }
        }
        tag::CLOCK_PING => Message::ClockPing {
            node: get_node(buf)?,
            seq: get_u64(buf)?,
            t_send: f64::from_bits(get_u64(buf)?),
        },
        tag::CLOCK_PONG => Message::ClockPong {
            seq: get_u64(buf)?,
            t_send: f64::from_bits(get_u64(buf)?),
            t_collector: f64::from_bits(get_u64(buf)?),
        },
        tag::INSTALL => Message::Install { kv: get_kv(buf)? },
        tag::ROUTE_UPDATE => {
            let count = get_u32(buf)? as u64;
            let n = check_len(buf, count, 28)?;
            let mut placements = Vec::with_capacity(n);
            for _ in 0..n {
                placements.push(WirePlacement {
                    orig_key: buf.get_u64_le(),
                    new_key: buf.get_u64_le(),
                    server: buf.get_u32_le(),
                    offset: buf.get_u32_le(),
                    len: buf.get_u32_le(),
                });
            }
            Message::RouteUpdate { placements }
        }
        tag::VOTE_REQUEST => Message::VoteRequest {
            term: get_u64(buf)?,
            candidate: get_u32(buf)?,
            last_log_index: get_u64(buf)?,
            last_log_term: get_u64(buf)?,
        },
        tag::VOTE_RESPONSE => Message::VoteResponse {
            term: get_u64(buf)?,
            voter: get_u32(buf)?,
            granted: get_u8(buf)? != 0,
        },
        tag::APPEND_ENTRIES => {
            let term = get_u64(buf)?;
            let leader = get_u32(buf)?;
            let prev_index = get_u64(buf)?;
            let prev_term = get_u64(buf)?;
            let commit = get_u64(buf)?;
            let count = get_u32(buf)? as u64;
            // Entries are variable-sized; check_len against the fixed
            // per-entry header bounds the count before allocating.
            let n = check_len(buf, count, LOG_ENTRY_HEADER_LEN)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let e_term = get_u64(buf)?;
                let e_index = get_u64(buf)?;
                let cmd_len = get_u32(buf)? as u64;
                let cmd_n = check_len(buf, cmd_len, 1)?;
                entries.push(WireLogEntry {
                    term: e_term,
                    index: e_index,
                    cmd: get_bytes(buf, cmd_n),
                });
            }
            Message::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                commit,
                entries,
            }
        }
        tag::APPEND_ACK => Message::AppendAck {
            term: get_u64(buf)?,
            follower: get_u32(buf)?,
            ok: get_u8(buf)? != 0,
            match_index: get_u64(buf)?,
        },
        tag::LEADER_REDIRECT => Message::LeaderRedirect {
            term: get_u64(buf)?,
            leader: get_u32(buf)?,
        },
        tag::TRACED => {
            let ctx = CausalCtx {
                request_id: get_u64(buf)?,
                attempt: get_u16(buf)?,
                parent_span: get_u32(buf)?,
            };
            let inner = decode_from(buf)?;
            // One context per wire message: a nested envelope means a
            // corrupt or malicious frame, not a legitimate sender.
            if matches!(inner, Message::Traced { .. }) {
                return Err(DecodeError::UnknownTag(tag::TRACED));
            }
            Message::Traced {
                ctx,
                inner: Box::new(inner),
            }
        }
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(msg)
}

fn put_node(buf: &mut BytesMut, node: NodeId) {
    match node {
        NodeId::Scheduler => {
            buf.put_u8(node_tag::SCHEDULER);
            buf.put_u32_le(0);
        }
        NodeId::Server(m) => {
            buf.put_u8(node_tag::SERVER);
            buf.put_u32_le(m);
        }
        NodeId::Worker(n) => {
            buf.put_u8(node_tag::WORKER);
            buf.put_u32_le(n);
        }
        NodeId::Collector => {
            buf.put_u8(node_tag::COLLECTOR);
            buf.put_u32_le(0);
        }
        NodeId::Supervisor(k) => {
            buf.put_u8(node_tag::SUPERVISOR);
            buf.put_u32_le(k);
        }
    }
}

fn get_node<B: Buf>(buf: &mut B) -> Result<NodeId, DecodeError> {
    let kind = get_u8(buf)?;
    let idx = get_u32(buf)?;
    match kind {
        node_tag::SCHEDULER => Ok(NodeId::Scheduler),
        node_tag::SERVER => Ok(NodeId::Server(idx)),
        node_tag::WORKER => Ok(NodeId::Worker(idx)),
        node_tag::COLLECTOR => Ok(NodeId::Collector),
        node_tag::SUPERVISOR => Ok(NodeId::Supervisor(idx)),
        other => Err(DecodeError::UnknownTag(other)),
    }
}

/// Read `n` raw bytes from the cursor; the caller has already bounds-checked
/// `n` against `remaining()` via [`check_len`].
fn get_bytes<B: Buf>(buf: &mut B, n: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        let chunk = buf.chunk();
        let take = (n - v.len()).min(chunk.len());
        v.extend_from_slice(&chunk[..take]);
        buf.advance(take);
    }
    v
}

fn put_event(buf: &mut BytesMut, e: &TraceEvent) {
    buf.put_u64_le(e.ts.to_bits());
    buf.put_u64_le(e.dur.to_bits());
    buf.put_u8(e.kind.index() as u8);
    buf.put_u32_le(e.shard);
    buf.put_u32_le(e.worker);
    buf.put_u64_le(e.progress);
    buf.put_u64_le(e.v_train);
    buf.put_u64_le(e.bytes);
    buf.put_u64_le(e.seq);
    buf.put_u64_le(e.request_id);
    buf.put_u32_le(e.attempt);
    buf.put_u32_le(e.parent_span);
}

fn get_event<B: Buf>(buf: &mut B) -> Result<TraceEvent, DecodeError> {
    // `check_len` in the caller guarantees `EVENT_WIRE_LEN` bytes remain.
    let ts = f64::from_bits(buf.get_u64_le());
    let dur = f64::from_bits(buf.get_u64_le());
    let kind_idx = buf.get_u8();
    let kind = *EventKind::ALL
        .get(kind_idx as usize)
        .ok_or(DecodeError::UnknownTag(kind_idx))?;
    Ok(TraceEvent {
        ts,
        dur,
        kind,
        shard: buf.get_u32_le(),
        worker: buf.get_u32_le(),
        progress: buf.get_u64_le(),
        v_train: buf.get_u64_le(),
        bytes: buf.get_u64_le(),
        seq: buf.get_u64_le(),
        request_id: buf.get_u64_le(),
        attempt: buf.get_u32_le(),
        parent_span: buf.get_u32_le(),
    })
}

fn put_kv(buf: &mut BytesMut, kv: &KvPairs) {
    put_u64_vec(buf, &kv.keys);
    put_u32_vec(buf, &kv.lens);
    put_f32_vec(buf, &kv.vals);
}

fn get_kv<B: Buf>(buf: &mut B) -> Result<KvPairs, DecodeError> {
    let kv = KvPairs {
        keys: get_u64_vec(buf)?,
        lens: get_u32_vec(buf)?,
        vals: get_f32_vec(buf)?,
    };
    if !kv.is_consistent() {
        return Err(DecodeError::InconsistentKv);
    }
    Ok(kv)
}

fn put_u64_vec(buf: &mut BytesMut, v: &[u64]) {
    buf.put_u32_le(v.len() as u32);
    for x in v {
        buf.put_u64_le(*x);
    }
}

fn put_u32_vec(buf: &mut BytesMut, v: &[u32]) {
    buf.put_u32_le(v.len() as u32);
    for x in v {
        buf.put_u32_le(*x);
    }
}

fn put_f32_vec(buf: &mut BytesMut, v: &[f32]) {
    buf.put_u32_le(v.len() as u32);
    for x in v {
        buf.put_u32_le(x.to_bits());
    }
}

fn check_len<B: Buf>(buf: &B, count: u64, elem_size: usize) -> Result<usize, DecodeError> {
    if count > MAX_ELEMS {
        return Err(DecodeError::LengthOverflow(count));
    }
    let n = count as usize;
    let needed = n * elem_size;
    if buf.remaining() < needed {
        return Err(DecodeError::Truncated {
            needed,
            available: buf.remaining(),
        });
    }
    Ok(n)
}

fn get_u64_vec<B: Buf>(buf: &mut B) -> Result<Vec<u64>, DecodeError> {
    let count = get_u32(buf)? as u64;
    let n = check_len(buf, count, 8)?;
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn get_u32_vec<B: Buf>(buf: &mut B) -> Result<Vec<u32>, DecodeError> {
    let count = get_u32(buf)? as u64;
    let n = check_len(buf, count, 4)?;
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

fn get_f32_vec<B: Buf>(buf: &mut B) -> Result<Vec<f32>, DecodeError> {
    let count = get_u32(buf)? as u64;
    let n = check_len(buf, count, 4)?;
    Ok((0..n).map(|_| f32::from_bits(buf.get_u32_le())).collect())
}

fn get_u8<B: Buf>(buf: &mut B) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated {
            needed: 1,
            available: buf.remaining(),
        });
    }
    Ok(buf.get_u8())
}

fn get_u16<B: Buf>(buf: &mut B) -> Result<u16, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated {
            needed: 2,
            available: buf.remaining(),
        });
    }
    Ok(buf.get_u16_le())
}

fn get_u32<B: Buf>(buf: &mut B) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated {
            needed: 4,
            available: buf.remaining(),
        });
    }
    Ok(buf.get_u32_le())
}

fn get_u64<B: Buf>(buf: &mut B) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated {
            needed: 8,
            available: buf.remaining(),
        });
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = encode(&msg);
        let back = decode(bytes).expect("decode");
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Message::SPush {
            worker: 3,
            progress: 42,
            kv: KvPairs::from_slices(&[(1, &[1.5, -2.5][..]), (9, &[0.0][..])]),
        });
        roundtrip(Message::SPull {
            worker: 7,
            progress: 11,
            keys: vec![0, 5, u64::MAX],
        });
        roundtrip(Message::PushAck {
            server: 2,
            progress: 100,
        });
        roundtrip(Message::PullResponse {
            server: 1,
            progress: 9,
            version: 13,
            kv: KvPairs::single(4, vec![3.25; 7]),
        });
        roundtrip(Message::Register {
            node: NodeId::Worker(12),
        });
        roundtrip(Message::Register {
            node: NodeId::Scheduler,
        });
        roundtrip(Message::RegisterAck {
            num_workers: 64,
            num_servers: 8,
        });
        roundtrip(Message::Heartbeat {
            node: NodeId::Server(5),
            seq: 999,
        });
        roundtrip(Message::Barrier { group: 1, seq: 2 });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Install {
            kv: KvPairs::from_slices(&[(2, &[0.5, 1.5][..])]),
        });
        roundtrip(Message::RouteUpdate {
            placements: vec![
                WirePlacement {
                    orig_key: 0,
                    new_key: 1 << 40,
                    server: 1,
                    offset: 0,
                    len: 16,
                },
                WirePlacement {
                    orig_key: 3,
                    new_key: (3 << 40) | 16,
                    server: 0,
                    offset: 16,
                    len: 8,
                },
            ],
        });
        roundtrip(Message::RouteUpdate { placements: vec![] });
        roundtrip(Message::TraceBatch {
            node: NodeId::Worker(1),
            offset_secs: -0.0625,
            batch_seq: 3,
            emitted: 40,
            dropped: 2,
            events: vec![
                TraceEvent {
                    ts: 1.5,
                    dur: 0.25,
                    kind: EventKind::BarrierWait,
                    shard: 0,
                    worker: 1,
                    progress: 7,
                    v_train: 6,
                    bytes: 0,
                    seq: 38,
                    request_id: (2u64 << 40) | 17,
                    attempt: 1,
                    parent_span: 3,
                },
                TraceEvent {
                    ts: 1.75,
                    dur: 0.0,
                    kind: EventKind::NodeDeclaredDead,
                    shard: 2,
                    worker: u32::MAX,
                    progress: 0,
                    v_train: 9,
                    bytes: 0,
                    seq: 39,
                    ..Default::default()
                },
            ],
        });
        roundtrip(Message::TraceBatch {
            node: NodeId::Collector,
            offset_secs: 0.0,
            batch_seq: 0,
            emitted: 0,
            dropped: 0,
            events: vec![],
        });
        roundtrip(Message::ClockPing {
            node: NodeId::Server(2),
            seq: 11,
            t_send: 0.125,
        });
        roundtrip(Message::ClockPong {
            seq: 11,
            t_send: 0.125,
            t_collector: 0.375,
        });
        roundtrip(Message::Register {
            node: NodeId::Supervisor(2),
        });
        roundtrip(Message::VoteRequest {
            term: 3,
            candidate: 1,
            last_log_index: 17,
            last_log_term: 2,
        });
        roundtrip(Message::VoteResponse {
            term: 3,
            voter: 2,
            granted: true,
        });
        roundtrip(Message::VoteResponse {
            term: 4,
            voter: 0,
            granted: false,
        });
        roundtrip(Message::AppendEntries {
            term: 5,
            leader: 1,
            prev_index: 9,
            prev_term: 4,
            commit: 8,
            entries: vec![
                WireLogEntry {
                    term: 5,
                    index: 10,
                    cmd: vec![],
                },
                WireLogEntry {
                    term: 5,
                    index: 11,
                    cmd: vec![1, 0, 0, 0, 2],
                },
            ],
        });
        roundtrip(Message::AppendEntries {
            term: 1,
            leader: 0,
            prev_index: 0,
            prev_term: 0,
            commit: 0,
            entries: vec![],
        });
        roundtrip(Message::AppendAck {
            term: 5,
            follower: 2,
            ok: false,
            match_index: 9,
        });
        roundtrip(Message::LeaderRedirect { term: 6, leader: 1 });
        roundtrip(Message::LeaderRedirect {
            term: 6,
            leader: crate::msg::NO_LEADER,
        });
        roundtrip(
            Message::SPush {
                worker: 3,
                progress: 42,
                kv: KvPairs::single(1, vec![0.5; 4]),
            }
            .with_ctx(CausalCtx::new((4u64 << 40) | 7).retry(1).span(2)),
        );
        roundtrip(Message::Shutdown.with_ctx(CausalCtx::new(u64::MAX)));
    }

    #[test]
    fn nested_traced_envelope_is_rejected() {
        // Hand-build Traced(Traced(Shutdown)) — with_ctx refuses to nest, so
        // splice the bytes directly: outer header + ctx, then a full inner
        // Traced encoding.
        let inner = encode(&Message::Shutdown.with_ctx(CausalCtx::new(1)));
        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(20); // TRACED
        buf.put_u64_le(2); // request_id
        buf.put_u16_le(0); // attempt
        buf.put_u32_le(u32::MAX); // parent_span
        buf.extend_from_slice(inner.as_ref());
        let err = decode(buf.freeze()).unwrap_err();
        assert_eq!(err, DecodeError::UnknownTag(20));
    }

    #[test]
    fn traced_encoded_len_is_exact_and_event_len_matches_constant() {
        let msg = Message::PullResponse {
            server: 1,
            progress: 9,
            version: 13,
            kv: KvPairs::single(4, vec![3.25; 7]),
        };
        let wrapped = msg.clone().with_ctx(CausalCtx::new(5).retry(3));
        assert_eq!(encoded_len(&wrapped), encode(&wrapped).len());
        assert_eq!(
            encoded_len(&wrapped),
            2 + CausalCtx::WIRE_LEN + encoded_len(&msg)
        );
        // One encoded TraceEvent occupies exactly EVENT_WIRE_LEN bytes.
        let empty = Message::TraceBatch {
            node: NodeId::Collector,
            offset_secs: 0.0,
            batch_seq: 0,
            emitted: 0,
            dropped: 0,
            events: vec![],
        };
        let one = Message::TraceBatch {
            node: NodeId::Collector,
            offset_secs: 0.0,
            batch_seq: 0,
            emitted: 1,
            dropped: 0,
            events: vec![TraceEvent::default()],
        };
        assert_eq!(encoded_len(&one) - encoded_len(&empty), EVENT_WIRE_LEN);
        assert_eq!(EVENT_WIRE_LEN, 73);
    }

    #[test]
    fn trace_event_with_unknown_kind_index_is_rejected() {
        let msg = Message::TraceBatch {
            node: NodeId::Worker(0),
            offset_secs: 0.0,
            batch_seq: 0,
            emitted: 1,
            dropped: 0,
            events: vec![TraceEvent {
                shard: 0,
                worker: 0,
                ..Default::default()
            }],
        };
        // The kind byte sits after version+tag (2), node (5), four u64
        // headers (32), the count word (4) and the event's ts+dur (16).
        let kind_at = 2 + 5 + 32 + 4 + 16;
        let err = decode(corrupt_at(&encode(&msg), kind_at, 0xEE)).unwrap_err();
        assert_eq!(err, DecodeError::UnknownTag(0xEE));
    }

    #[test]
    fn encoded_len_matches_encode_exactly() {
        let msgs = vec![
            Message::SPush {
                worker: 3,
                progress: 42,
                kv: KvPairs::from_slices(&[(1, &[1.5, -2.5][..]), (9, &[0.0][..])]),
            },
            Message::SPull {
                worker: 7,
                progress: 11,
                keys: vec![0, 5, u64::MAX],
            },
            Message::SPull {
                worker: 0,
                progress: 0,
                keys: vec![],
            },
            Message::PushAck {
                server: 2,
                progress: 100,
            },
            Message::PullResponse {
                server: 1,
                progress: 9,
                version: 13,
                kv: KvPairs::single(4, vec![3.25; 7]),
            },
            Message::Register {
                node: NodeId::Worker(12),
            },
            Message::RegisterAck {
                num_workers: 64,
                num_servers: 8,
            },
            Message::Heartbeat {
                node: NodeId::Server(5),
                seq: 999,
            },
            Message::Barrier { group: 1, seq: 2 },
            Message::Shutdown,
            Message::Install {
                kv: KvPairs::single(8, vec![2.5; 3]),
            },
            Message::RouteUpdate {
                placements: vec![WirePlacement {
                    orig_key: 1,
                    new_key: 2,
                    server: 0,
                    offset: 0,
                    len: 4,
                }],
            },
            Message::TraceBatch {
                node: NodeId::Server(1),
                offset_secs: 0.5,
                batch_seq: 2,
                emitted: 10,
                dropped: 1,
                events: vec![TraceEvent {
                    ts: 0.25,
                    dur: 0.0,
                    kind: EventKind::WireRecv,
                    shard: 1,
                    worker: 0,
                    progress: 4,
                    v_train: 3,
                    bytes: 64,
                    seq: 9,
                    request_id: 7,
                    attempt: 2,
                    parent_span: 1,
                }],
            },
            Message::ClockPing {
                node: NodeId::Worker(3),
                seq: 1,
                t_send: 0.5,
            },
            Message::ClockPong {
                seq: 1,
                t_send: 0.5,
                t_collector: 0.75,
            },
            Message::VoteRequest {
                term: 2,
                candidate: 0,
                last_log_index: 4,
                last_log_term: 1,
            },
            Message::VoteResponse {
                term: 2,
                voter: 1,
                granted: true,
            },
            Message::AppendEntries {
                term: 2,
                leader: 0,
                prev_index: 4,
                prev_term: 1,
                commit: 3,
                entries: vec![
                    WireLogEntry {
                        term: 2,
                        index: 5,
                        cmd: vec![0],
                    },
                    WireLogEntry {
                        term: 2,
                        index: 6,
                        cmd: vec![1, 7, 0, 0, 0],
                    },
                ],
            },
            Message::AppendAck {
                term: 2,
                follower: 1,
                ok: true,
                match_index: 6,
            },
            Message::LeaderRedirect { term: 2, leader: 0 },
        ];
        for msg in msgs {
            assert_eq!(
                encoded_len(&msg),
                encode(&msg).len(),
                "encoded_len mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn wire_len_helpers_match_built_messages() {
        let keys = vec![1u64, 2, 3];
        let kv = KvPairs::from_slices(&[(1, &[1.0, 2.0][..]), (2, &[3.0][..])]);
        assert_eq!(
            spull_wire_len(keys.len()),
            encode(&Message::SPull {
                worker: 0,
                progress: 0,
                keys
            })
            .len()
        );
        assert_eq!(
            spush_wire_len(&kv),
            encode(&Message::SPush {
                worker: 0,
                progress: 0,
                kv: kv.clone()
            })
            .len()
        );
        // Count-based variants agree with the kv-based ones (3 values
        // across 2 keys in the fixture).
        assert_eq!(spush_wire_len_counts(2, 3), spush_wire_len(&kv));
        assert_eq!(
            pull_response_wire_len_counts(2, 3),
            pull_response_wire_len(&kv)
        );
        assert_eq!(
            pull_response_wire_len(&kv),
            encode(&Message::PullResponse {
                server: 0,
                progress: 0,
                version: 0,
                kv
            })
            .len()
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let err = decode(corrupt_at(&encode(&Message::Shutdown), 0, 99)).unwrap_err();
        assert_eq!(
            err,
            DecodeError::VersionMismatch {
                expected: WIRE_VERSION,
                found: 99
            }
        );
    }

    #[test]
    fn rejects_unknown_tag() {
        let bytes = Bytes::from(vec![WIRE_VERSION, 0xEE]);
        assert_eq!(decode(bytes).unwrap_err(), DecodeError::UnknownTag(0xEE));
    }

    #[test]
    fn rejects_truncated_frame() {
        let full = encode(&Message::SPush {
            worker: 0,
            progress: 1,
            kv: KvPairs::single(0, vec![1.0; 16]),
        });
        for cut in 1..full.len() {
            let err = decode(full.slice(0..cut));
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_length_overflow() {
        // SPull with an absurd key count.
        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(2); // SPULL
        buf.put_u32_le(0); // worker
        buf.put_u64_le(0); // progress
        buf.put_u32_le(u32::MAX); // declared key count
        let err = decode(buf.freeze()).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::LengthOverflow(_) | DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_inconsistent_kv() {
        // Hand-encode a PushAck-like SPush whose lens disagree with vals.
        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(1); // SPUSH
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        // keys: [1]
        buf.put_u32_le(1);
        buf.put_u64_le(1);
        // lens: [3] (claims 3 values)
        buf.put_u32_le(1);
        buf.put_u32_le(3);
        // vals: only 1 value
        buf.put_u32_le(1);
        buf.put_u32_le(1.0f32.to_bits());
        let err = decode(buf.freeze()).unwrap_err();
        assert_eq!(err, DecodeError::InconsistentKv);
    }

    #[test]
    fn nan_and_special_floats_roundtrip_bitwise() {
        let vals = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            f32::MIN_POSITIVE,
        ];
        let msg = Message::SPush {
            worker: 0,
            progress: 0,
            kv: KvPairs::single(0, vals.clone()),
        };
        let back = decode(encode(&msg)).unwrap();
        if let Message::SPush { kv, .. } = back {
            for (a, b) in vals.iter().zip(kv.vals.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        } else {
            panic!("wrong variant");
        }
    }
}
