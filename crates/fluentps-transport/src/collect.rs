//! Trace collection over TCP: the collector service and per-node streamers.
//!
//! The pure merge/alignment core lives in `fluentps_obs::collect`; this
//! module is the wire plumbing around it. A [`CollectorService`] owns a
//! plain `TcpListener` — *not* a [`crate::tcp::TcpNode`], whose connections
//! are unidirectional and whose inbox would mix clock pongs into training
//! traffic — and each node runs a [`TraceStreamer`] thread that:
//!
//! 1. dials the collector and runs a short [`Message::ClockPing`] /
//!    [`Message::ClockPong`] handshake to estimate its clock offset
//!    (minimum-RTT sample wins, see `fluentps_obs::OffsetEstimator`);
//! 2. polls the node's `TraceCollector` ring buffers on a bounded cadence
//!    through a `TraceCursor` and ships fresh events as length-prefixed
//!    [`Message::TraceBatch`] frames, chunked to `max_batch` events;
//! 3. never blocks the training hot path: recording stays ring-buffered
//!    and drop-oldest, and a failed send drops the chunk (counted in the
//!    next batch header's cumulative `dropped`) instead of stalling.
//!
//! Shutdown is a read barrier: after the final flush the streamer sends one
//! more ping and waits for its pong. The collector handles each connection
//! serially, so the pong proves every prior batch was ingested — that is
//! what makes `received + dropped == emitted` exact at run end.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fluentps_obs::clock::ClockSource;
use fluentps_obs::collect::{ClusterCollector, NodeStats};
use fluentps_obs::{Profiler, Trace, TraceCollector};
use fluentps_util::buf::BytesMut;
use fluentps_util::sync::{Mutex, StopFlag};

use crate::error::TransportError;
use crate::frame::{encode_frame_into, write_frame, FrameReader};
use crate::msg::{Message, NodeId};

/// How long a streamer keeps retrying its initial dial before giving up
/// (the collector is normally bound before any node starts).
const CONNECT_RETRIES: u32 = 20;
const CONNECT_RETRY_EVERY: Duration = Duration::from_millis(50);
/// Read timeout for pong waits, so a dead collector cannot wedge shutdown.
const PONG_TIMEOUT: Duration = Duration::from_secs(2);

/// The central collection endpoint: accepts node connections, answers
/// clock pings with the collector-clock time, and feeds every trace batch
/// into a shared [`ClusterCollector`].
pub struct CollectorService {
    local_addr: SocketAddr,
    cluster: Arc<Mutex<ClusterCollector>>,
    clock: ClockSource,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CollectorService {
    /// Bind the service (port 0 lets the OS choose; see
    /// [`CollectorService::local_addr`]). `capacity_per_node` bounds the
    /// merged buffer per stream, mirroring the sender-side rings.
    pub fn bind(addr: SocketAddr, capacity_per_node: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let cluster = Arc::new(Mutex::new(ClusterCollector::new(capacity_per_node)));
        let clock = ClockSource::wall();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_cluster = Arc::clone(&cluster);
        let accept_clock = clock.clone();
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("trace-collector-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            spawn_ingest(stream, Arc::clone(&accept_cluster), accept_clock.clone());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn collector accept thread");
        Ok(CollectorService {
            local_addr,
            cluster,
            clock,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address nodes should stream to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Seconds since the collector's epoch (the cluster timeline's zero).
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Shared handle to the merge core (e.g. for live HTTP serving).
    pub fn cluster(&self) -> Arc<Mutex<ClusterCollector>> {
        Arc::clone(&self.cluster)
    }

    /// Stream every event ingested from now on into `engine` as it is
    /// aligned onto the collector clock, keeping its drop totals current
    /// (see `fluentps_obs::collect::ClusterCollector::attach_health`).
    pub fn attach_health(&self, engine: &fluentps_obs::HealthEngine) {
        self.cluster.lock().attach_health(engine.clone());
    }

    /// Merge every stream ingested so far into one trace.
    pub fn snapshot(&self) -> Trace {
        self.cluster.lock().snapshot()
    }

    /// Per-node collection accounting.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.cluster.lock().node_stats()
    }

    /// Verify `received + dropped == emitted` for every stream.
    pub fn check_balance(&self) -> Result<(), Vec<NodeStats>> {
        self.cluster.lock().check_balance()
    }

    /// Stop accepting new connections. Live ingest threads finish when
    /// their peers close, which streamer shutdown guarantees.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the non-blocking accept loop awake.
        TcpStream::connect(self.local_addr).ok();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CollectorService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_ingest(stream: TcpStream, cluster: Arc<Mutex<ClusterCollector>>, clock: ClockSource) {
    std::thread::Builder::new()
        .name("trace-collector-ingest".into())
        .spawn(move || {
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let mut reader = BufReader::new(stream);
            let mut frames = FrameReader::new();
            // One reused body buffer per connection: frames are decoded in
            // place, so the streaming drain costs no per-frame allocation
            // beyond the decoded events themselves.
            while let Ok((_, msg)) = frames.read_from(&mut reader) {
                match msg {
                    Message::ClockPing { seq, t_send, .. } => {
                        let pong = Message::ClockPong {
                            seq,
                            t_send,
                            t_collector: clock.now(),
                        };
                        if write_frame(&mut writer, NodeId::Collector, &pong).is_err() {
                            break;
                        }
                    }
                    Message::TraceBatch {
                        node,
                        offset_secs,
                        batch_seq,
                        emitted,
                        dropped,
                        events,
                    } => {
                        cluster.lock().ingest(
                            &node.to_string(),
                            offset_secs,
                            batch_seq,
                            emitted,
                            dropped,
                            &events,
                        );
                    }
                    Message::Shutdown => break,
                    // The collector is a passive sink; training traffic on
                    // this port is a wiring bug, not a protocol state.
                    _ => {}
                }
            }
        })
        .expect("spawn collector ingest thread");
}

/// Tuning knobs for a [`TraceStreamer`].
#[derive(Debug, Clone, Copy)]
pub struct StreamerConfig {
    /// Ring-poll (and batch-send) cadence.
    pub poll_every: Duration,
    /// Maximum events per `TraceBatch` frame; larger polls are chunked.
    pub max_batch: usize,
    /// Byte budget per coalesced write: a drain encodes its chunk frames
    /// back-to-back into one reused buffer and normally writes them with a
    /// single flush, but hands the buffer to the kernel early whenever it
    /// crosses this budget, so a huge backlog cannot queue unbounded bytes
    /// in user space and write latency stays bounded.
    pub max_batch_bytes: usize,
    /// Clock-offset probes at connection time.
    pub pings: u32,
}

impl Default for StreamerConfig {
    fn default() -> Self {
        StreamerConfig {
            poll_every: Duration::from_millis(20),
            max_batch: 512,
            max_batch_bytes: 256 << 10,
            pings: 4,
        }
    }
}

/// What a streamer did over its lifetime, returned by
/// [`TraceStreamer::stop`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamerReport {
    /// `TraceBatch` frames written successfully.
    pub batches: u64,
    /// Events shipped to the collector.
    pub events_sent: u64,
    /// Events dropped because a send failed (already folded into the
    /// cumulative `dropped` the collector saw in batch headers).
    pub send_drops: u64,
    /// Whether the initial dial ever succeeded.
    pub connected: bool,
}

/// Background thread that streams one node's ring-buffered trace events to
/// a [`CollectorService`].
pub struct TraceStreamer {
    stop: Arc<StopFlag>,
    handle: Option<JoinHandle<StreamerReport>>,
}

impl TraceStreamer {
    /// Start streaming `collector`'s events to `addr`, identifying as
    /// `node`. The streamer owns its cursor: use one streamer per
    /// `TraceCollector`.
    pub fn start(
        node: NodeId,
        collector: &TraceCollector,
        addr: SocketAddr,
        cfg: StreamerConfig,
    ) -> TraceStreamer {
        Self::start_profiled(node, collector, addr, cfg, Profiler::disabled())
    }

    /// [`TraceStreamer::start`] with span profiling: each ring drain (poll,
    /// chunk, encode, coalesced write) runs under a `streamer/drain` span on
    /// the streamer thread, so a profile shows how much of the run the
    /// observability plumbing itself cost.
    pub fn start_profiled(
        node: NodeId,
        collector: &TraceCollector,
        addr: SocketAddr,
        cfg: StreamerConfig,
        profiler: Profiler,
    ) -> TraceStreamer {
        let stop = Arc::new(StopFlag::new());
        let thread_stop = Arc::clone(&stop);
        let col = collector.clone();
        let handle = std::thread::Builder::new()
            .name(format!("trace-streamer-{node}"))
            .spawn(move || stream_loop(node, col, addr, cfg, thread_stop, profiler))
            .expect("spawn trace streamer thread");
        TraceStreamer {
            stop,
            handle: Some(handle),
        }
    }

    /// Flush everything still buffered, run the shutdown read barrier and
    /// return the streamer's accounting. The stop latch wakes a streamer
    /// parked in its poll wait immediately, so shutdown costs one drain +
    /// barrier round-trip, not a full `poll_every` sleep.
    pub fn stop(mut self) -> StreamerReport {
        self.stop.stop();
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => StreamerReport::default(),
        }
    }
}

impl Drop for TraceStreamer {
    fn drop(&mut self) {
        self.stop.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct StreamerConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    frames: FrameReader,
}

fn dial(addr: SocketAddr, stop: &StopFlag) -> Option<StreamerConn> {
    for _ in 0..CONNECT_RETRIES {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(PONG_TIMEOUT)).ok();
            if let Ok(writer) = stream.try_clone() {
                return Some(StreamerConn {
                    writer,
                    reader: BufReader::new(stream),
                    frames: FrameReader::new(),
                });
            }
        }
        if stop.wait_timeout(CONNECT_RETRY_EVERY) {
            return None;
        }
    }
    None
}

/// One ping/pong exchange; returns `(t_send, t_collector, t_recv)`.
fn ping_once(
    conn: &mut StreamerConn,
    node: NodeId,
    seq: u64,
    col: &TraceCollector,
) -> Option<(f64, f64, f64)> {
    let t_send = col.now();
    write_frame(
        &mut conn.writer,
        node,
        &Message::ClockPing { node, seq, t_send },
    )
    .ok()?;
    loop {
        match conn.frames.read_from(&mut conn.reader) {
            Ok((
                _,
                Message::ClockPong {
                    seq: s,
                    t_send: echoed,
                    t_collector,
                },
            )) => {
                let t_recv = col.now();
                if s == seq {
                    return Some((echoed, t_collector, t_recv));
                }
                // A stale pong from an earlier probe; keep reading.
            }
            Ok(_) => {}
            Err(_) => return None,
        }
    }
}

/// Hand the coalesced frames accumulated in `scratch` to the kernel in one
/// `write_all` and settle their accounting: success credits every pending
/// chunk, failure drops them all (counted in the next header that does get
/// through). The buffer is cleared but keeps its allocation for reuse.
fn write_coalesced(
    conn: &mut StreamerConn,
    scratch: &mut BytesMut,
    pending_batches: &mut u64,
    pending_events: &mut u64,
    report: &mut StreamerReport,
) {
    if scratch.is_empty() {
        return;
    }
    if conn.writer.write_all(scratch.as_ref()).is_ok() {
        report.batches += *pending_batches;
        report.events_sent += *pending_events;
    } else {
        // Never block or retry on the hot path: the chunks are gone;
        // account for them in the next header that does get through.
        report.send_drops += *pending_events;
    }
    scratch.clear();
    *pending_batches = 0;
    *pending_events = 0;
}

fn stream_loop(
    node: NodeId,
    col: TraceCollector,
    addr: SocketAddr,
    cfg: StreamerConfig,
    stop: Arc<StopFlag>,
    profiler: Profiler,
) -> StreamerReport {
    let mut report = StreamerReport::default();
    let mut cursor = col.cursor();
    let Some(mut conn) = dial(addr, &stop) else {
        // Never connected: park until stop (the latch wakes us at once) so
        // the cursor accounting is still discarded without spinning.
        while !stop.wait_timeout(cfg.poll_every) {}
        return report;
    };
    report.connected = true;

    let mut estimator = fluentps_obs::OffsetEstimator::new();
    for seq in 0..u64::from(cfg.pings.max(1)) {
        if let Some((t_send, t_collector, t_recv)) = ping_once(&mut conn, node, seq, &col) {
            estimator.add_sample(t_send, t_collector, t_recv);
        } else {
            break;
        }
    }

    let mut batch_seq = 0u64;
    // One reused encode buffer for the whole connection: each drain
    // coalesces all its chunk frames here and writes them with a single
    // syscall, spilling early only past the byte budget.
    let mut scratch = BytesMut::new();
    let mut drain = |conn: &mut StreamerConn, report: &mut StreamerReport, batch_seq: &mut u64| {
        let _span = profiler.enter("streamer/drain");
        let polled = cursor.poll();
        // Chunk to max_batch; always emit at least one (possibly empty)
        // frame so cumulative accounting reaches the collector even when
        // nothing new was recorded.
        let chunks: Vec<&[fluentps_obs::TraceEvent]> = if polled.events.is_empty() {
            vec![&[][..]]
        } else {
            polled.events.chunks(cfg.max_batch.max(1)).collect()
        };
        scratch.clear();
        let mut pending_batches = 0u64;
        let mut pending_events = 0u64;
        for chunk in chunks {
            *batch_seq += 1;
            let msg = Message::TraceBatch {
                node,
                offset_secs: estimator.offset(),
                batch_seq: *batch_seq,
                emitted: polled.emitted,
                dropped: polled.dropped + report.send_drops,
                events: chunk.to_vec(),
            };
            encode_frame_into(node, &msg, &mut scratch);
            pending_batches += 1;
            pending_events += chunk.len() as u64;
            if scratch.len() >= cfg.max_batch_bytes {
                write_coalesced(
                    conn,
                    &mut scratch,
                    &mut pending_batches,
                    &mut pending_events,
                    report,
                );
            }
        }
        write_coalesced(
            conn,
            &mut scratch,
            &mut pending_batches,
            &mut pending_events,
            report,
        );
    };

    while !stop.wait_timeout(cfg.poll_every) {
        drain(&mut conn, &mut report, &mut batch_seq);
    }
    // Final drain picks up everything recorded up to the stop request.
    drain(&mut conn, &mut report, &mut batch_seq);
    // Read barrier: the pong proves the collector processed every batch
    // written before the ping on this (serially handled) connection.
    ping_once(&mut conn, node, u64::MAX, &col);
    write_frame(&mut conn.writer, node, &Message::Shutdown).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluentps_obs::{EventKind, RecordArgs};

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn streamer_ships_events_and_accounting_balances() {
        let mut service = CollectorService::bind(loopback(), 1 << 14).unwrap();
        let col = TraceCollector::wall(1 << 12);
        let tracer = col.tracer();
        let streamer = TraceStreamer::start(
            NodeId::Worker(3),
            &col,
            service.local_addr(),
            StreamerConfig {
                poll_every: Duration::from_millis(5),
                ..StreamerConfig::default()
            },
        );
        for i in 0..200u64 {
            tracer.record(
                EventKind::PushApplied,
                RecordArgs::new().shard(0).worker(3).progress(i),
            );
        }
        let report = streamer.stop();
        assert!(report.connected);
        assert_eq!(report.events_sent, 200);
        assert_eq!(report.send_drops, 0);

        let stats = service.node_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].node, "worker3");
        assert_eq!(stats[0].received, 200);
        assert_eq!(stats[0].emitted, 200);
        assert_eq!(stats[0].dropped, 0);
        service.check_balance().expect("balanced");

        let trace = service.snapshot();
        assert_eq!(trace.events.len(), 200);
        assert_eq!(trace.count(EventKind::PushApplied), 200);
        // Merged timeline is strictly ordered with re-keyed seq.
        for (i, w) in trace.events.windows(2).enumerate() {
            assert!(w[0].ts <= w[1].ts, "ts out of order at {i}");
            assert!(w[0].seq < w[1].seq);
        }
        service.stop();
    }

    #[test]
    fn ring_overwrites_are_accounted_as_drops() {
        let mut service = CollectorService::bind(loopback(), 1 << 14).unwrap();
        let col = TraceCollector::wall(16); // tiny ring: most events overwritten
        let tracer = col.tracer();
        // Record everything before the streamer's first poll can drain.
        for i in 0..1000u64 {
            tracer.record(EventKind::WireSend, RecordArgs::new().progress(i));
        }
        let streamer = TraceStreamer::start(
            NodeId::Server(1),
            &col,
            service.local_addr(),
            StreamerConfig {
                poll_every: Duration::from_millis(200),
                ..StreamerConfig::default()
            },
        );
        let report = streamer.stop();
        assert!(report.connected);
        let stats = service.node_stats();
        assert_eq!(stats[0].emitted, 1000);
        assert_eq!(stats[0].received + stats[0].dropped, 1000);
        assert!(stats[0].dropped >= 1000 - 16);
        service.check_balance().expect("balanced despite drops");
        service.stop();
    }

    #[test]
    fn two_nodes_merge_onto_one_timeline() {
        let mut service = CollectorService::bind(loopback(), 1 << 14).unwrap();
        let col_a = TraceCollector::wall(256);
        let col_b = TraceCollector::wall(256);
        let ta = col_a.tracer();
        let tb = col_b.tracer();
        let sa = TraceStreamer::start(
            NodeId::Worker(0),
            &col_a,
            service.local_addr(),
            StreamerConfig::default(),
        );
        let sb = TraceStreamer::start(
            NodeId::Server(0),
            &col_b,
            service.local_addr(),
            StreamerConfig::default(),
        );
        for i in 0..50u64 {
            ta.record(EventKind::WireSend, RecordArgs::new().worker(0).progress(i));
            tb.record(EventKind::WireRecv, RecordArgs::new().shard(0).progress(i));
        }
        sa.stop();
        sb.stop();
        let stats = service.node_stats();
        assert_eq!(stats.len(), 2);
        service.check_balance().expect("both balanced");
        let trace = service.snapshot();
        assert_eq!(trace.events.len(), 100);
        assert_eq!(trace.count(EventKind::WireSend), 50);
        assert_eq!(trace.count(EventKind::WireRecv), 50);
        service.stop();
    }

    #[test]
    fn attached_health_engine_observes_streamed_events() {
        use fluentps_obs::{HealthEngine, StreamConfig};
        let mut service = CollectorService::bind(loopback(), 1 << 14).unwrap();
        let engine = HealthEngine::with_default_rules(StreamConfig::all_run());
        service.attach_health(&engine);
        let col = TraceCollector::wall(256);
        let tracer = col.tracer();
        let streamer = TraceStreamer::start(
            NodeId::Worker(0),
            &col,
            service.local_addr(),
            StreamerConfig {
                poll_every: Duration::from_millis(5),
                ..StreamerConfig::default()
            },
        );
        for i in 0..40u64 {
            tracer.record(
                EventKind::PullRequested,
                RecordArgs::new().shard(0).worker(0).progress(i).v_train(i),
            );
        }
        streamer.stop();
        let slo = engine.slo_text();
        assert!(slo.contains("slo events 40\n"), "{slo}");
        assert!(slo.contains("slo drop_rate 0.000000\n"), "{slo}");
        service.stop();
    }

    #[test]
    fn streamer_without_collector_gives_up_quietly() {
        let col = TraceCollector::wall(64);
        let tracer = col.tracer();
        tracer.record(EventKind::PushApplied, RecordArgs::new());
        // Nothing listens here (bind-then-drop reserves a dead port).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let streamer = TraceStreamer::start(
            NodeId::Worker(9),
            &col,
            addr,
            StreamerConfig {
                poll_every: Duration::from_millis(1),
                ..StreamerConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        let report = streamer.stop();
        assert!(!report.connected);
        assert_eq!(report.batches, 0);
    }
}
