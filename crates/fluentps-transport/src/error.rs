//! Transport error type shared by all transports and the codec.

use std::fmt;

/// Errors surfaced by transports and the wire codec.
#[derive(Debug)]
pub enum TransportError {
    /// The peer (or the whole fabric) has shut down; no more messages will
    /// flow on this endpoint.
    Disconnected,
    /// A message was addressed to a node this transport does not know.
    UnknownNode(crate::msg::NodeId),
    /// A request went unanswered past its deadline and the retry budget is
    /// exhausted (client-side resilience layer).
    Timeout,
    /// The wire bytes could not be decoded into a [`crate::Message`].
    Decode(DecodeError),
    /// An I/O error from a stream transport (TCP).
    Io(std::io::Error),
}

/// Detailed decode failure reasons, useful in tests and when diagnosing
/// protocol version mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the announced payload was complete.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first byte did not name a known message kind.
    UnknownTag(u8),
    /// The protocol version byte did not match [`crate::codec::WIRE_VERSION`].
    VersionMismatch {
        /// Version this build speaks.
        expected: u8,
        /// Version found on the wire.
        found: u8,
    },
    /// A `KvPairs` section had inconsistent lengths (sum of `lens` must equal
    /// `vals.len()` and `lens.len()` must equal `keys.len()`).
    InconsistentKv,
    /// A declared length would exceed the sanity cap (corrupt frame).
    LengthOverflow(u64),
    /// A buffer that must hold exactly one message had bytes left after it
    /// (a corrupted tag can turn a long message into a short one; the
    /// leftovers are how that misparse is caught).
    TrailingBytes(usize),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            TransportError::Timeout => write!(f, "request timed out; retries exhausted"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#x}"),
            DecodeError::VersionMismatch { expected, found } => {
                write!(
                    f,
                    "wire version mismatch: expected {expected}, found {found}"
                )
            }
            DecodeError::InconsistentKv => write!(f, "inconsistent KvPairs lengths"),
            DecodeError::LengthOverflow(n) => write!(f, "declared length {n} exceeds cap"),
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} bytes left after a complete message")
            }
        }
    }
}

impl std::error::Error for TransportError {}
impl std::error::Error for DecodeError {}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::Decode(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}
