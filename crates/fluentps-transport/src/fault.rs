//! Deterministic fault injection for transports.
//!
//! Chaos testing a live cluster is only useful if a failing run can be
//! replayed: the same seed must produce the same faults. Clock-driven or
//! probability-per-send schemes break that the moment a wall-clock retry
//! sends one extra message (every later random draw shifts). This module
//! instead matches faults against *message content*: a [`FaultRule`] names
//! the link, the message class and the logical time (the `progress` field
//! carried by every data message), and fires on the first `count`
//! occurrences. Duplicate messages produced by client retries are
//! byte-identical to their originals, so whichever copy a rule consumes the
//! observable outcome is the same — fault schedules stay reproducible
//! bit-for-bit under `tests/determinism.rs` rules no matter how the OS
//! schedules threads.
//!
//! The shim wraps the [`Postman`]/[`Mailbox`] traits generically, so it
//! composes with both the in-process fabric and the TCP transport. One
//! [`FaultInjector`] is shared by every wrapped endpoint of a cluster;
//! [`FaultInjector::kill`] (or a [`FaultAction::Sever`] rule) blackholes a
//! node mid-run, which is how the engines simulate a crashed server.

use std::collections::{HashMap, HashSet};

use fluentps_util::rng::StdRng;
use fluentps_util::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

use crate::msg::{Message, NodeId};
use crate::{Mailbox, Postman, TransportError};

/// Coarse message classes a [`FaultRule`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// `SPush` (gradients).
    Push,
    /// `SPull` (parameter requests).
    Pull,
    /// `PullResponse` (parameters).
    Response,
    /// `PushAck`.
    Ack,
    /// Everything else (heartbeats, control traffic).
    Control,
}

/// Classify a message for rule matching. A [`Message::Traced`] envelope is
/// transparent: the inner message's class is what rules target, so a chaos
/// plan written against bare traffic fires identically once causal tracing
/// is enabled.
pub fn classify(msg: &Message) -> MsgClass {
    match msg {
        Message::SPush { .. } => MsgClass::Push,
        Message::SPull { .. } => MsgClass::Pull,
        Message::PullResponse { .. } => MsgClass::Response,
        Message::PushAck { .. } => MsgClass::Ack,
        Message::Traced { inner, .. } => classify(inner),
        _ => MsgClass::Control,
    }
}

/// The logical time a data message carries, if any. Like [`classify`],
/// sees through [`Message::Traced`] envelopes.
fn progress_of(msg: &Message) -> Option<u64> {
    match msg {
        Message::SPush { progress, .. }
        | Message::SPull { progress, .. }
        | Message::PushAck { progress, .. }
        | Message::PullResponse { progress, .. } => Some(*progress),
        Message::Traced { inner, .. } => progress_of(inner),
        _ => None,
    }
}

/// What to match. `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgPattern {
    /// Sending node.
    pub from: Option<NodeId>,
    /// Destination node.
    pub to: Option<NodeId>,
    /// Message class.
    pub class: Option<MsgClass>,
    /// Logical time (the `progress` field of data messages).
    pub progress: Option<u64>,
}

impl MsgPattern {
    /// Wildcard pattern (matches everything).
    pub fn any() -> Self {
        MsgPattern {
            from: None,
            to: None,
            class: None,
            progress: None,
        }
    }

    fn matches(&self, from: NodeId, to: NodeId, msg: &Message) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.class.is_none_or(|c| c == classify(msg))
            && self.progress.is_none_or(|p| progress_of(msg) == Some(p))
    }
}

/// What happens to a matched message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard it.
    Drop,
    /// Hold it back until `n` further messages have passed on the same
    /// link, then deliver (reordering, the transport-level form of delay —
    /// wall-clock sleeps would not replay deterministically).
    Delay(u32),
    /// Deliver it twice.
    Duplicate,
    /// Discard it and blackhole the destination node from then on (both
    /// directions), as if its process died.
    Sever,
}

/// One scheduled fault: `action` fires on the first `count` messages
/// matching `pattern`.
#[derive(Debug, Clone, Copy)]
pub struct FaultRule {
    /// What to match.
    pub pattern: MsgPattern,
    /// What to do.
    pub action: FaultAction,
    /// How many matches this rule consumes before going inert.
    pub count: u32,
}

/// A full fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rules, tried in order; the first live match wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no faults (the shim becomes a pass-through).
    pub fn passthrough() -> Self {
        FaultPlan::default()
    }

    /// A seeded random schedule of drops, delays and duplicates over the
    /// data traffic of a `workers` × `servers` cluster running `iters`
    /// iterations. All randomness is consumed here, at construction — the
    /// schedule itself is a plain value, so two runs with the same seed
    /// inject identical faults. Control traffic (heartbeats) is never
    /// targeted, so a chaos plan cannot spuriously trip liveness detection.
    pub fn chaos(seed: u64, workers: u32, servers: u32, iters: u64, faults: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rules = Vec::with_capacity(faults);
        for _ in 0..faults {
            let w = rng.gen_range(0..workers.max(1));
            let m = rng.gen_range(0..servers.max(1));
            let progress = rng.gen_range(0..iters.max(1));
            let (class, from, to) = match rng.gen_range(0..3u32) {
                0 => (MsgClass::Push, NodeId::Worker(w), NodeId::Server(m)),
                1 => (MsgClass::Pull, NodeId::Worker(w), NodeId::Server(m)),
                _ => (MsgClass::Response, NodeId::Server(m), NodeId::Worker(w)),
            };
            let action = match rng.gen_range(0..3u32) {
                0 => FaultAction::Drop,
                1 => FaultAction::Delay(rng.gen_range(1..3u32)),
                _ => FaultAction::Duplicate,
            };
            rules.push(FaultRule {
                pattern: MsgPattern {
                    from: Some(from),
                    to: Some(to),
                    class: Some(class),
                    progress: Some(progress),
                },
                action,
                count: 1,
            });
        }
        FaultPlan { rules }
    }
}

/// Counters of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages discarded by `Drop` rules.
    pub dropped: u64,
    /// Messages held back by `Delay` rules.
    pub delayed: u64,
    /// Messages sent twice by `Duplicate` rules.
    pub duplicated: u64,
    /// Messages blackholed because an endpoint was severed.
    pub blackholed: u64,
}

type Link = (NodeId, NodeId);

struct Held {
    countdown: u32,
    to: NodeId,
    msg: Message,
}

struct Inner {
    rules: Vec<(FaultRule, u32)>, // (rule, remaining)
    severed: HashSet<NodeId>,
    held: HashMap<Link, Vec<Held>>,
    stats: FaultStats,
}

/// Shared fault state: clone one injector into every wrapped endpoint of a
/// cluster so rules, severed-node state and stats are global.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<Mutex<Inner>>,
}

impl FaultInjector {
    /// Build an injector from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Arc::new(Mutex::new(Inner {
                rules: plan.rules.into_iter().map(|r| (r, r.count)).collect(),
                severed: HashSet::new(),
                held: HashMap::new(),
                stats: FaultStats::default(),
            })),
        }
    }

    /// An injector that does nothing (all traffic passes).
    pub fn passthrough() -> Self {
        FaultInjector::new(FaultPlan::passthrough())
    }

    /// Wrap a sending half. `from` is the wrapped endpoint's own identity
    /// (the [`Postman`] trait does not expose it).
    pub fn postman<P: Postman>(&self, from: NodeId, postman: P) -> FaultyPostman<P> {
        FaultyPostman {
            from,
            postman,
            injector: self.clone(),
        }
    }

    /// Wrap a receiving half. Messages from severed nodes are discarded on
    /// receipt, covering traffic already in flight when the sender died.
    pub fn mailbox<M: Mailbox>(&self, at: NodeId, mailbox: M) -> FaultyMailbox<M> {
        FaultyMailbox {
            at,
            mailbox,
            injector: self.clone(),
        }
    }

    /// Blackhole `node` immediately: every message to or from it is
    /// silently discarded from now on. This is the "kill" primitive — the
    /// node's thread keeps running but the cluster can no longer hear it.
    pub fn kill(&self, node: NodeId) {
        self.inner.lock().severed.insert(node);
    }

    /// Whether `node` has been severed (by [`FaultInjector::kill`] or a
    /// [`FaultAction::Sever`] rule).
    pub fn is_severed(&self, node: NodeId) -> bool {
        self.inner.lock().severed.contains(&node)
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats
    }

    /// Decide the fate of one message and update link state. Returns the
    /// deliveries to perform *now* (the message itself zero, one or two
    /// times, plus any held messages whose countdown expired).
    fn route(&self, from: NodeId, to: NodeId, msg: Message) -> Vec<(NodeId, Message)> {
        let mut inner = self.inner.lock();
        let link = (from, to);
        let mut out = Vec::new();

        if inner.severed.contains(&from) || inner.severed.contains(&to) {
            inner.stats.blackholed += 1;
        } else {
            let action = inner
                .rules
                .iter_mut()
                .find(|(r, left)| *left > 0 && r.pattern.matches(from, to, &msg))
                .map(|(r, left)| {
                    *left -= 1;
                    r.action
                });
            match action {
                Some(FaultAction::Drop) => inner.stats.dropped += 1,
                Some(FaultAction::Sever) => {
                    inner.stats.dropped += 1;
                    inner.severed.insert(to);
                }
                Some(FaultAction::Delay(n)) => {
                    inner.stats.delayed += 1;
                    inner.held.entry(link).or_default().push(Held {
                        countdown: n,
                        to,
                        msg,
                    });
                    // The delayed message itself does not tick the link.
                    return out;
                }
                Some(FaultAction::Duplicate) => {
                    inner.stats.duplicated += 1;
                    out.push((to, msg.clone()));
                    out.push((to, msg));
                }
                None => out.push((to, msg)),
            }
        }

        // One more message passed on this link: tick held entries and
        // release the due ones (in hold order) after it.
        if let Some(held) = inner.held.get_mut(&link) {
            for h in held.iter_mut() {
                h.countdown = h.countdown.saturating_sub(1);
            }
            let mut i = 0;
            while i < held.len() {
                if held[i].countdown == 0 {
                    let h = held.remove(i);
                    out.push((h.to, h.msg));
                } else {
                    i += 1;
                }
            }
            if held.is_empty() {
                inner.held.remove(&link);
            }
        }
        out
    }
}

/// A [`Postman`] with a [`FaultInjector`] in front of it.
pub struct FaultyPostman<P> {
    from: NodeId,
    postman: P,
    injector: FaultInjector,
}

impl<P> FaultyPostman<P> {
    /// The shared injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl<P: Clone> Clone for FaultyPostman<P> {
    fn clone(&self) -> Self {
        FaultyPostman {
            from: self.from,
            postman: self.postman.clone(),
            injector: self.injector.clone(),
        }
    }
}

impl<P: Postman> Postman for FaultyPostman<P> {
    fn send(&self, to: NodeId, msg: Message) -> Result<(), TransportError> {
        for (to, msg) in self.injector.route(self.from, to, msg) {
            self.postman.send(to, msg)?;
        }
        Ok(())
    }
}

/// A [`Mailbox`] that discards messages from severed senders.
pub struct FaultyMailbox<M> {
    at: NodeId,
    mailbox: M,
    injector: FaultInjector,
}

impl<M: Mailbox> FaultyMailbox<M> {
    fn admit(&self, env: (NodeId, Message)) -> Option<(NodeId, Message)> {
        let inner = &self.injector.inner;
        let mut guard = inner.lock();
        if guard.severed.contains(&env.0) || guard.severed.contains(&self.at) {
            guard.stats.blackholed += 1;
            None
        } else {
            Some(env)
        }
    }
}

impl<M: Mailbox> Mailbox for FaultyMailbox<M> {
    fn recv(&self) -> Result<(NodeId, Message), TransportError> {
        loop {
            let env = self.mailbox.recv()?;
            if let Some(env) = self.admit(env) {
                return Ok(env);
            }
        }
    }

    fn try_recv(&self) -> Result<Option<(NodeId, Message)>, TransportError> {
        while let Some(env) = self.mailbox.try_recv()? {
            if let Some(env) = self.admit(env) {
                return Ok(Some(env));
            }
        }
        Ok(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(NodeId, Message)>, TransportError> {
        // Filtering consumes no meaningful time relative to the timeouts
        // the engines use; a severed burst simply re-arms the wait.
        loop {
            match self.mailbox.recv_timeout(timeout)? {
                None => return Ok(None),
                Some(env) => {
                    if let Some(env) = self.admit(env) {
                        return Ok(Some(env));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::Fabric;

    fn ping(progress: u64) -> Message {
        Message::SPull {
            worker: 0,
            progress,
            keys: vec![1],
        }
    }

    #[test]
    fn consensus_messages_classify_as_control() {
        // Chaos plans only target Push/Pull/Response, so the control plane's
        // own consensus traffic must land in the Control class — otherwise a
        // chaos rule could sever the very mechanism that recovers from it.
        for msg in [
            Message::VoteRequest {
                term: 1,
                candidate: 0,
                last_log_index: 0,
                last_log_term: 0,
            },
            Message::VoteResponse {
                term: 1,
                voter: 1,
                granted: true,
            },
            Message::AppendEntries {
                term: 1,
                leader: 0,
                prev_index: 0,
                prev_term: 0,
                commit: 0,
                entries: vec![],
            },
            Message::AppendAck {
                term: 1,
                follower: 1,
                ok: true,
                match_index: 0,
            },
            Message::LeaderRedirect { term: 1, leader: 0 },
        ] {
            assert_eq!(classify(&msg), MsgClass::Control, "{msg:?}");
        }
    }

    #[test]
    fn traced_envelopes_classify_as_their_inner_message() {
        use crate::msg::CausalCtx;
        let ctx = CausalCtx::new(7);
        let traced = ping(3).with_ctx(ctx);
        assert_eq!(classify(&traced), MsgClass::Pull);
        // A progress-targeted rule matches the wrapped message too.
        let pat = MsgPattern {
            progress: Some(3),
            class: Some(MsgClass::Pull),
            ..MsgPattern::any()
        };
        assert!(pat.matches(NodeId::Worker(0), NodeId::Server(0), &traced));
        // Duplicates of a traced message keep the identical context, which
        // is what lets the collector fold them by (request_id, attempt).
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let injector = FaultInjector::new(FaultPlan {
            rules: vec![FaultRule {
                pattern: MsgPattern {
                    progress: Some(3),
                    ..MsgPattern::any()
                },
                action: FaultAction::Duplicate,
                count: 1,
            }],
        });
        let w = fabric.register(NodeId::Worker(0));
        let p = injector.postman(NodeId::Worker(0), w.postman());
        p.send(NodeId::Server(0), ping(3).with_ctx(ctx)).unwrap();
        for _ in 0..2 {
            let (_, msg) = server.recv().unwrap();
            assert_eq!(msg.ctx(), Some(ctx));
        }
        assert_eq!(injector.stats().duplicated, 1);
    }

    #[test]
    fn passthrough_delivers_everything() {
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let injector = FaultInjector::passthrough();
        let w = fabric.register(NodeId::Worker(0));
        let p = injector.postman(NodeId::Worker(0), w.postman());
        for i in 0..5 {
            p.send(NodeId::Server(0), ping(i)).unwrap();
        }
        for i in 0..5 {
            let (_, msg) = server.recv().unwrap();
            assert_eq!(msg, ping(i));
        }
        assert_eq!(injector.stats(), FaultStats::default());
    }

    #[test]
    fn drop_rule_consumes_first_match_only() {
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let injector = FaultInjector::new(FaultPlan {
            rules: vec![FaultRule {
                pattern: MsgPattern {
                    from: Some(NodeId::Worker(0)),
                    to: Some(NodeId::Server(0)),
                    class: Some(MsgClass::Pull),
                    progress: Some(1),
                },
                action: FaultAction::Drop,
                count: 1,
            }],
        });
        let w = fabric.register(NodeId::Worker(0));
        let p = injector.postman(NodeId::Worker(0), w.postman());
        for i in 0..3 {
            p.send(NodeId::Server(0), ping(i)).unwrap();
        }
        // The retry of the dropped message passes.
        p.send(NodeId::Server(0), ping(1)).unwrap();
        let got: Vec<u64> = (0..3)
            .map(|_| match server.recv().unwrap().1 {
                Message::SPull { progress, .. } => progress,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(got, vec![0, 2, 1]);
        assert_eq!(injector.stats().dropped, 1);
    }

    #[test]
    fn delay_reorders_within_the_link() {
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let injector = FaultInjector::new(FaultPlan {
            rules: vec![FaultRule {
                pattern: MsgPattern {
                    progress: Some(0),
                    ..MsgPattern::any()
                },
                action: FaultAction::Delay(2),
                count: 1,
            }],
        });
        let w = fabric.register(NodeId::Worker(0));
        let p = injector.postman(NodeId::Worker(0), w.postman());
        for i in 0..4 {
            p.send(NodeId::Server(0), ping(i)).unwrap();
        }
        let got: Vec<u64> = (0..4)
            .map(|_| match server.recv().unwrap().1 {
                Message::SPull { progress, .. } => progress,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Message 0 held until two more passed: 1, 2, then 0, then 3.
        assert_eq!(got, vec![1, 2, 0, 3]);
        assert_eq!(injector.stats().delayed, 1);
    }

    #[test]
    fn duplicate_delivers_twice_and_sever_blackholes() {
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let injector = FaultInjector::new(FaultPlan {
            rules: vec![
                FaultRule {
                    pattern: MsgPattern {
                        progress: Some(0),
                        ..MsgPattern::any()
                    },
                    action: FaultAction::Duplicate,
                    count: 1,
                },
                FaultRule {
                    pattern: MsgPattern {
                        progress: Some(2),
                        ..MsgPattern::any()
                    },
                    action: FaultAction::Sever,
                    count: 1,
                },
            ],
        });
        let w = fabric.register(NodeId::Worker(0));
        let p = injector.postman(NodeId::Worker(0), w.postman());
        for i in 0..4 {
            p.send(NodeId::Server(0), ping(i)).unwrap();
        }
        // 0 twice, 1 once; 2 severs the server, 3 blackholed.
        let got: Vec<u64> = (0..3)
            .map(|_| match server.recv().unwrap().1 {
                Message::SPull { progress, .. } => progress,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(got, vec![0, 0, 1]);
        assert!(server.try_recv().unwrap().is_none());
        assert!(injector.is_severed(NodeId::Server(0)));
        assert_eq!(injector.stats().duplicated, 1);
        assert_eq!(injector.stats().blackholed, 1);
    }

    #[test]
    fn killed_node_is_silenced_in_both_directions() {
        let fabric = Fabric::new();
        let server = fabric.register(NodeId::Server(0));
        let worker = fabric.register(NodeId::Worker(0));
        let injector = FaultInjector::passthrough();
        let wp = injector.postman(NodeId::Worker(0), worker.postman());
        let sp = injector.postman(NodeId::Server(0), server.postman());
        wp.send(NodeId::Server(0), ping(0)).unwrap();
        assert!(server
            .recv_timeout(Duration::from_secs(1))
            .unwrap()
            .is_some());

        injector.kill(NodeId::Server(0));
        wp.send(NodeId::Server(0), ping(1)).unwrap();
        assert!(server.try_recv().unwrap().is_none());
        sp.send(NodeId::Worker(0), Message::Shutdown).unwrap();
        assert!(worker.try_recv().unwrap().is_none());
        assert_eq!(injector.stats().blackholed, 2);
    }

    #[test]
    fn faulty_mailbox_filters_severed_senders() {
        let fabric = Fabric::new();
        let injector = FaultInjector::passthrough();
        let server = injector.mailbox(NodeId::Server(0), fabric.register(NodeId::Server(0)));
        // Unwrapped postman: the message reaches the inbox before the kill.
        let w = fabric.register(NodeId::Worker(0));
        w.postman().send(NodeId::Server(0), ping(0)).unwrap();
        injector.kill(NodeId::Worker(0));
        assert!(server
            .recv_timeout(Duration::from_millis(50))
            .unwrap()
            .is_none());
        assert_eq!(injector.stats().blackholed, 1);
    }

    #[test]
    fn chaos_plans_are_seed_deterministic() {
        let a = FaultPlan::chaos(42, 4, 2, 100, 8);
        let b = FaultPlan::chaos(42, 4, 2, 100, 8);
        assert_eq!(a.rules.len(), 8);
        for (x, y) in a.rules.iter().zip(b.rules.iter()) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.action, y.action);
        }
        let c = FaultPlan::chaos(43, 4, 2, 100, 8);
        assert!(
            a.rules
                .iter()
                .zip(c.rules.iter())
                .any(|(x, y)| x.pattern != y.pattern || x.action != y.action),
            "different seeds should differ"
        );
        // Chaos never targets control traffic.
        for r in &a.rules {
            assert!(matches!(
                r.pattern.class,
                Some(MsgClass::Push | MsgClass::Pull | MsgClass::Response)
            ));
        }
    }
}
