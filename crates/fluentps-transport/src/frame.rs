//! Length-prefixed framing for stream transports.
//!
//! Each frame is `[u32 len LE][u8 from_kind][u32 from_idx][payload]` where
//! `payload` is one codec-encoded message. `len` covers everything after the
//! length word itself.

use std::io::{Read, Write};

use fluentps_util::buf::{Buf, BufMut, Bytes, BytesMut};

use crate::codec;
use crate::error::{DecodeError, TransportError};
use crate::msg::{Message, NodeId};

/// Upper bound on a single frame (256 MiB); larger declared lengths indicate
/// stream corruption and abort the connection rather than allocating.
pub const MAX_FRAME: u32 = 256 << 20;

fn node_to_pair(node: NodeId) -> (u8, u32) {
    match node {
        NodeId::Scheduler => (0, 0),
        NodeId::Server(m) => (1, m),
        NodeId::Worker(n) => (2, n),
        NodeId::Collector => (3, 0),
    }
}

fn node_from_pair(kind: u8, idx: u32) -> Result<NodeId, DecodeError> {
    match kind {
        0 => Ok(NodeId::Scheduler),
        1 => Ok(NodeId::Server(idx)),
        2 => Ok(NodeId::Worker(idx)),
        3 => Ok(NodeId::Collector),
        other => Err(DecodeError::UnknownTag(other)),
    }
}

/// Serialize `(from, msg)` into one framed buffer ready to be written to a
/// stream in a single `write_all`.
pub fn encode_frame(from: NodeId, msg: &Message) -> Bytes {
    let mut payload = BytesMut::with_capacity(msg.payload_bytes() + 24);
    let (kind, idx) = node_to_pair(from);
    payload.put_u8(kind);
    payload.put_u32_le(idx);
    codec::encode_into(msg, &mut payload);
    let mut framed = BytesMut::with_capacity(payload.len() + 4);
    framed.put_u32_le(payload.len() as u32);
    framed.extend_from_slice(&payload);
    framed.freeze()
}

/// Total bytes `encode_frame` produces for `msg`: the 4-byte length word,
/// the 5-byte sender id, and the codec-encoded payload. This is the number
/// the tracer reports on `WireSend`/`WireRecv` events.
pub fn wire_len(msg: &Message) -> usize {
    4 + 5 + codec::encoded_len(msg)
}

/// Decode one frame body (everything after the length word).
pub fn decode_frame_body(mut body: Bytes) -> Result<(NodeId, Message), TransportError> {
    if body.remaining() < 5 {
        return Err(DecodeError::Truncated {
            needed: 5,
            available: body.remaining(),
        }
        .into());
    }
    let kind = body.get_u8();
    let idx = body.get_u32_le();
    let from = node_from_pair(kind, idx)?;
    let msg = codec::decode(body)?;
    Ok((from, msg))
}

/// Write one framed message to a stream.
pub fn write_frame<W: Write>(w: &mut W, from: NodeId, msg: &Message) -> Result<(), TransportError> {
    let frame = encode_frame(from, msg);
    w.write_all(&frame)?;
    Ok(())
}

/// Read one framed message from a stream, blocking until complete.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(NodeId, Message), TransportError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(DecodeError::LengthOverflow(len as u64).into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_frame_body(Bytes::from(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::KvPairs;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_via_stream() {
        let msgs = vec![
            (
                NodeId::Worker(4),
                Message::SPush {
                    worker: 4,
                    progress: 17,
                    kv: KvPairs::single(2, vec![1.0, 2.0, 3.0]),
                },
            ),
            (NodeId::Scheduler, Message::Shutdown),
            (
                NodeId::Server(1),
                Message::PullResponse {
                    server: 1,
                    progress: 3,
                    version: 5,
                    kv: KvPairs::default(),
                },
            ),
        ];
        let mut stream = Vec::new();
        for (from, msg) in &msgs {
            write_frame(&mut stream, *from, msg).unwrap();
        }
        let mut cursor = Cursor::new(stream);
        for (from, msg) in &msgs {
            let (f, m) = read_frame(&mut cursor).unwrap();
            assert_eq!(f, *from);
            assert_eq!(m, *msg);
        }
    }

    #[test]
    fn wire_len_matches_encoded_frame() {
        let msgs = vec![
            Message::SPush {
                worker: 4,
                progress: 17,
                kv: KvPairs::single(2, vec![1.0, 2.0, 3.0]),
            },
            Message::SPull {
                worker: 1,
                progress: 2,
                keys: vec![0, 1, 2, 3],
            },
            Message::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(
                wire_len(&msg),
                encode_frame(NodeId::Worker(0), &msg).len(),
                "wire_len mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(stream)).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Decode(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn short_stream_is_io_error() {
        let frame = encode_frame(NodeId::Worker(0), &Message::Shutdown);
        let cut = &frame[..frame.len() - 1];
        let err = read_frame(&mut Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
    }
}
