//! Length-prefixed framing for stream transports.
//!
//! Each frame is `[u32 len LE][u8 from_kind][u32 from_idx][payload]` where
//! `payload` is one codec-encoded message. `len` covers everything after the
//! length word itself.

use std::io::{Read, Write};

use fluentps_obs::Profiler;
use fluentps_util::buf::{Buf, BufMut, Bytes, BytesMut};

use crate::codec;
use crate::error::{DecodeError, TransportError};
use crate::msg::{Message, NodeId};

/// Upper bound on a single frame (256 MiB); larger declared lengths indicate
/// stream corruption and abort the connection rather than allocating.
pub const MAX_FRAME: u32 = 256 << 20;

fn node_to_pair(node: NodeId) -> (u8, u32) {
    match node {
        NodeId::Scheduler => (0, 0),
        NodeId::Server(m) => (1, m),
        NodeId::Worker(n) => (2, n),
        NodeId::Collector => (3, 0),
        NodeId::Supervisor(k) => (4, k),
    }
}

fn node_from_pair(kind: u8, idx: u32) -> Result<NodeId, DecodeError> {
    match kind {
        0 => Ok(NodeId::Scheduler),
        1 => Ok(NodeId::Server(idx)),
        2 => Ok(NodeId::Worker(idx)),
        3 => Ok(NodeId::Collector),
        4 => Ok(NodeId::Supervisor(idx)),
        other => Err(DecodeError::UnknownTag(other)),
    }
}

/// Append one frame for `(from, msg)` to `buf` and return the frame's byte
/// length. Writes the length word as a placeholder, encodes the sender id
/// and payload straight behind it, then patches the length in place — one
/// buffer, no intermediate copy. With an exact reserve up front the append
/// never reallocates (debug-asserted), so a caller that `clear()`s and
/// reuses `buf` pays zero allocations per frame at steady state.
pub fn encode_frame_into(from: NodeId, msg: &Message, buf: &mut BytesMut) -> usize {
    let frame_len = wire_len(msg);
    buf.reserve(frame_len);
    let cap_before = buf.capacity();
    let start = buf.len();
    buf.put_u32_le(0); // length placeholder, patched below
    let (kind, idx) = node_to_pair(from);
    buf.put_u8(kind);
    buf.put_u32_le(idx);
    codec::encode_into(msg, buf);
    let body_len = buf.len() - start - 4;
    buf.set_u32_le_at(start, body_len as u32);
    debug_assert_eq!(buf.len() - start, frame_len, "wire_len out of sync");
    debug_assert_eq!(buf.capacity(), cap_before, "frame encode reallocated");
    frame_len
}

/// [`encode_frame_into`] under a `wire/encode` profiler span. The span
/// covers exactly the serialization work (reserve, header, codec encode,
/// length patch); with a disabled profiler the wrapper costs two branches.
pub fn encode_frame_into_profiled(
    from: NodeId,
    msg: &Message,
    buf: &mut BytesMut,
    prof: &Profiler,
) -> usize {
    let _span = prof.enter("wire/encode");
    encode_frame_into(from, msg, buf)
}

/// Serialize `(from, msg)` into one framed buffer ready to be written to a
/// stream in a single `write_all`. Allocates per call — hot paths should
/// use [`encode_frame_into`] with a reused buffer instead.
pub fn encode_frame(from: NodeId, msg: &Message) -> Bytes {
    let mut framed = BytesMut::with_capacity(wire_len(msg));
    encode_frame_into(from, msg, &mut framed);
    framed.freeze()
}

/// Total bytes `encode_frame` produces for `msg`: the 4-byte length word,
/// the 5-byte sender id, and the codec-encoded payload. This is the number
/// the tracer reports on `WireSend`/`WireRecv` events.
pub fn wire_len(msg: &Message) -> usize {
    4 + 5 + codec::encoded_len(msg)
}

/// Decode one frame body (everything after the length word).
pub fn decode_frame_body(mut body: Bytes) -> Result<(NodeId, Message), TransportError> {
    if body.remaining() < 5 {
        return Err(DecodeError::Truncated {
            needed: 5,
            available: body.remaining(),
        }
        .into());
    }
    let kind = body.get_u8();
    let idx = body.get_u32_le();
    let from = node_from_pair(kind, idx)?;
    let msg = codec::decode(body)?;
    Ok((from, msg))
}

/// Write one framed message to a stream (one `write_all`, no flush — the
/// caller decides the flush cadence; see the batch-coalescing contract in
/// DESIGN.md § wire path).
pub fn write_frame<W: Write>(w: &mut W, from: NodeId, msg: &Message) -> Result<(), TransportError> {
    let frame = encode_frame(from, msg);
    w.write_all(&frame)?;
    Ok(())
}

/// Decode one frame body from a borrowed slice (everything after the
/// length word) without copying it into an owned buffer first.
pub fn decode_frame_slice(body: &[u8]) -> Result<(NodeId, Message), TransportError> {
    let mut cursor = body;
    if cursor.remaining() < 5 {
        return Err(DecodeError::Truncated {
            needed: 5,
            available: cursor.remaining(),
        }
        .into());
    }
    let kind = cursor.get_u8();
    let idx = cursor.get_u32_le();
    let from = node_from_pair(kind, idx)?;
    let msg = codec::decode_slice(cursor)?;
    Ok((from, msg))
}

/// Streaming frame reader that owns one reusable body buffer: each frame is
/// read into the same allocation and decoded in place, so the per-frame
/// `vec![0u8; len]` of the old read path disappears. The buffer grows to
/// the largest frame seen on the connection and stays there.
#[derive(Default)]
pub struct FrameReader {
    body: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty scratch buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Read one framed message from `r`, blocking until complete.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> Result<(NodeId, Message), TransportError> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Err(DecodeError::LengthOverflow(len as u64).into());
        }
        self.body.resize(len as usize, 0);
        r.read_exact(&mut self.body)?;
        decode_frame_slice(&self.body)
    }

    /// [`FrameReader::read_from`] with the *decode* step under a
    /// `wire/decode` profiler span. The blocking socket reads stay outside
    /// the span deliberately: time spent waiting for bytes is wire latency
    /// (the tracer's territory), not decode cost.
    pub fn read_from_profiled<R: Read>(
        &mut self,
        r: &mut R,
        prof: &Profiler,
    ) -> Result<(NodeId, Message), TransportError> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Err(DecodeError::LengthOverflow(len as u64).into());
        }
        self.body.resize(len as usize, 0);
        r.read_exact(&mut self.body)?;
        let _span = prof.enter("wire/decode");
        decode_frame_slice(&self.body)
    }
}

/// Read one framed message from a stream, blocking until complete.
/// Allocates a fresh body buffer per call — connection loops should hold a
/// [`FrameReader`] instead.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(NodeId, Message), TransportError> {
    FrameReader::new().read_from(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::KvPairs;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_via_stream() {
        let msgs = vec![
            (
                NodeId::Worker(4),
                Message::SPush {
                    worker: 4,
                    progress: 17,
                    kv: KvPairs::single(2, vec![1.0, 2.0, 3.0]),
                },
            ),
            (NodeId::Scheduler, Message::Shutdown),
            (
                NodeId::Server(1),
                Message::PullResponse {
                    server: 1,
                    progress: 3,
                    version: 5,
                    kv: KvPairs::default(),
                },
            ),
        ];
        let mut stream = Vec::new();
        for (from, msg) in &msgs {
            write_frame(&mut stream, *from, msg).unwrap();
        }
        let mut cursor = Cursor::new(stream);
        for (from, msg) in &msgs {
            let (f, m) = read_frame(&mut cursor).unwrap();
            assert_eq!(f, *from);
            assert_eq!(m, *msg);
        }
    }

    #[test]
    fn wire_len_matches_encoded_frame() {
        let msgs = vec![
            Message::SPush {
                worker: 4,
                progress: 17,
                kv: KvPairs::single(2, vec![1.0, 2.0, 3.0]),
            },
            Message::SPull {
                worker: 1,
                progress: 2,
                keys: vec![0, 1, 2, 3],
            },
            Message::SPull {
                worker: 1,
                progress: 2,
                keys: vec![0, 1, 2, 3],
            }
            .with_ctx(crate::msg::CausalCtx::new(9).retry(1)),
            Message::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(
                wire_len(&msg),
                encode_frame(NodeId::Worker(0), &msg).len(),
                "wire_len mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn reused_buffer_coalesces_frames_without_reallocating() {
        let msgs = vec![
            Message::SPush {
                worker: 1,
                progress: 2,
                kv: KvPairs::single(0, vec![0.5; 32]),
            },
            Message::SPull {
                worker: 1,
                progress: 2,
                keys: vec![0, 1],
            },
            Message::Shutdown,
        ];
        let mut buf = BytesMut::new();
        // Warm the buffer once, then the steady-state batch must not grow it.
        for m in &msgs {
            encode_frame_into(NodeId::Worker(1), m, &mut buf);
        }
        buf.clear();
        let warm_cap = buf.capacity();
        let mut total = 0;
        for m in &msgs {
            total += encode_frame_into(NodeId::Worker(1), m, &mut buf);
        }
        assert_eq!(buf.len(), total);
        assert_eq!(buf.capacity(), warm_cap, "steady-state batch reallocated");
        // The coalesced bytes decode back to the same frame sequence.
        let mut cursor = Cursor::new(buf.as_ref().to_vec());
        let mut reader = FrameReader::new();
        for m in &msgs {
            let (from, got) = reader.read_from(&mut cursor).unwrap();
            assert_eq!(from, NodeId::Worker(1));
            assert_eq!(got, *m);
        }
    }

    #[test]
    fn frame_reader_matches_read_frame() {
        let mut stream = Vec::new();
        for seq in 0..10u64 {
            write_frame(
                &mut stream,
                NodeId::Server(1),
                &Message::Heartbeat {
                    node: NodeId::Server(1),
                    seq,
                },
            )
            .unwrap();
        }
        let mut a = Cursor::new(stream.clone());
        let mut b = Cursor::new(stream);
        let mut reader = FrameReader::new();
        for _ in 0..10 {
            assert_eq!(
                reader.read_from(&mut a).unwrap(),
                read_frame(&mut b).unwrap()
            );
        }
    }

    #[test]
    fn profiled_wrappers_match_plain_and_record_wire_spans() {
        use fluentps_obs::ProfCollector;
        let msg = Message::SPush {
            worker: 2,
            progress: 5,
            kv: KvPairs::single(1, vec![0.25; 16]),
        };
        let col = ProfCollector::wall();
        let prof = col.profiler();
        let mut plain = BytesMut::new();
        let mut profiled = BytesMut::new();
        encode_frame_into(NodeId::Worker(2), &msg, &mut plain);
        encode_frame_into_profiled(NodeId::Worker(2), &msg, &mut profiled, &prof);
        assert_eq!(plain.as_ref(), profiled.as_ref());

        let mut cursor = Cursor::new(profiled.as_ref().to_vec());
        let mut reader = FrameReader::new();
        let (from, got) = reader.read_from_profiled(&mut cursor, &prof).unwrap();
        assert_eq!((from, got), (NodeId::Worker(2), msg));

        let report = col.snapshot();
        assert_eq!(report.spans["wire/encode"].count, 1);
        assert_eq!(report.spans["wire/decode"].count, 1);

        // Disabled profiler: same bytes, nothing recorded.
        let disabled = Profiler::disabled();
        let mut buf = BytesMut::new();
        encode_frame_into_profiled(NodeId::Worker(2), &Message::Shutdown, &mut buf, &disabled);
        let mut cursor = Cursor::new(buf.as_ref().to_vec());
        reader.read_from_profiled(&mut cursor, &disabled).unwrap();
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(stream)).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Decode(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn short_stream_is_io_error() {
        let frame = encode_frame(NodeId::Worker(0), &Message::Shutdown);
        let cut = &frame[..frame.len() - 1];
        let err = read_frame(&mut Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
    }
}
