//! In-process transport fabric over `fluentps_util::sync` channels.
//!
//! A [`Fabric`] owns one unbounded channel per registered node. Endpoints are
//! cheap to clone for the sending side. This transport is the workhorse of
//! unit/integration tests and of the threaded engine in `fluentps-core`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use fluentps_util::sync::RwLock;
use fluentps_util::sync::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::TransportError;
use crate::msg::{Message, NodeId};
use crate::{Mailbox, Postman};

type Envelope = (NodeId, Message);

#[derive(Default)]
struct Registry {
    inboxes: HashMap<NodeId, Sender<Envelope>>,
}

/// An in-process cluster fabric. Clone handles freely; all clones address the
/// same registry.
#[derive(Clone, Default)]
pub struct Fabric {
    registry: Arc<RwLock<Registry>>,
}

impl Fabric {
    /// Create an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `node` and obtain its endpoint. Registering the same node
    /// twice replaces the previous inbox (the old endpoint starts reporting
    /// `Disconnected` once its sender side is dropped).
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.registry.write().inboxes.insert(node, tx);
        Endpoint {
            node,
            rx,
            fabric: self.clone(),
        }
    }

    /// Remove a node from the fabric; subsequent sends to it fail with
    /// [`TransportError::UnknownNode`].
    pub fn deregister(&self, node: NodeId) {
        self.registry.write().inboxes.remove(&node);
    }

    /// Nodes currently registered.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.registry.read().inboxes.keys().copied().collect();
        v.sort();
        v
    }

    /// Send `msg` from `from` to `to`.
    pub fn send(&self, from: NodeId, to: NodeId, msg: Message) -> Result<(), TransportError> {
        let guard = self.registry.read();
        let tx = guard
            .inboxes
            .get(&to)
            .ok_or(TransportError::UnknownNode(to))?;
        tx.send((from, msg))
            .map_err(|_| TransportError::Disconnected)
    }

    /// Broadcast a message from `from` to every registered node except the
    /// sender itself. Useful for shutdown fan-out.
    pub fn broadcast(&self, from: NodeId, msg: &Message) -> Result<(), TransportError> {
        for node in self.nodes() {
            if node != from {
                self.send(from, node, msg.clone())?;
            }
        }
        Ok(())
    }
}

/// A node's endpoint on an in-process [`Fabric`]: a receiver plus a handle
/// for sending.
pub struct Endpoint {
    node: NodeId,
    rx: Receiver<Envelope>,
    fabric: Fabric,
}

impl Endpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A cloneable sending handle stamped with this endpoint's identity.
    pub fn postman(&self) -> InprocPostman {
        InprocPostman {
            from: self.node,
            fabric: self.fabric.clone(),
        }
    }
}

impl Mailbox for Endpoint {
    fn recv(&self) -> Result<(NodeId, Message), TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&self) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.rx.try_recv() {
            Ok(env) => Ok(Some(env)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Sending handle for an in-process endpoint.
#[derive(Clone)]
pub struct InprocPostman {
    from: NodeId,
    fabric: Fabric,
}

impl Postman for InprocPostman {
    fn send(&self, to: NodeId, msg: Message) -> Result<(), TransportError> {
        self.fabric.send(self.from, to, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let fabric = Fabric::new();
        let a = fabric.register(NodeId::Worker(0));
        let b = fabric.register(NodeId::Server(0));
        a.postman()
            .send(NodeId::Server(0), Message::Shutdown)
            .unwrap();
        let (from, msg) = b.recv().unwrap();
        assert_eq!(from, NodeId::Worker(0));
        assert_eq!(msg, Message::Shutdown);
    }

    #[test]
    fn unknown_node_errors() {
        let fabric = Fabric::new();
        let a = fabric.register(NodeId::Worker(0));
        let err = a.postman().send(NodeId::Server(9), Message::Shutdown);
        assert!(matches!(err, Err(TransportError::UnknownNode(_))));
    }

    #[test]
    fn per_sender_fifo_order() {
        let fabric = Fabric::new();
        let tx = fabric.register(NodeId::Worker(0));
        let rx = fabric.register(NodeId::Server(0));
        for seq in 0..100 {
            tx.postman()
                .send(
                    NodeId::Server(0),
                    Message::Heartbeat {
                        node: NodeId::Worker(0),
                        seq,
                    },
                )
                .unwrap();
        }
        for seq in 0..100 {
            match rx.recv().unwrap().1 {
                Message::Heartbeat { seq: s, .. } => assert_eq!(s, seq),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn try_recv_and_timeout() {
        let fabric = Fabric::new();
        let rx = fabric.register(NodeId::Server(0));
        assert!(rx.try_recv().unwrap().is_none());
        assert!(rx.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        let tx = fabric.register(NodeId::Worker(0));
        tx.postman()
            .send(NodeId::Server(0), Message::Shutdown)
            .unwrap();
        assert!(rx.try_recv().unwrap().is_some());
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let fabric = Fabric::new();
        let rx = fabric.register(NodeId::Server(0));
        let mut handles = Vec::new();
        for w in 0..8u32 {
            let ep = fabric.register(NodeId::Worker(w));
            handles.push(thread::spawn(move || {
                let p = ep.postman();
                for seq in 0..50 {
                    p.send(
                        NodeId::Server(0),
                        Message::Heartbeat {
                            node: NodeId::Worker(w),
                            seq,
                        },
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while rx.try_recv().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 8 * 50);
    }

    #[test]
    fn deregister_makes_node_unknown() {
        let fabric = Fabric::new();
        let _a = fabric.register(NodeId::Worker(0));
        let _b = fabric.register(NodeId::Server(0));
        fabric.deregister(NodeId::Server(0));
        let err = fabric.send(NodeId::Worker(0), NodeId::Server(0), Message::Shutdown);
        assert!(matches!(err, Err(TransportError::UnknownNode(_))));
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let fabric = Fabric::new();
        let s = fabric.register(NodeId::Scheduler);
        let a = fabric.register(NodeId::Worker(0));
        let b = fabric.register(NodeId::Worker(1));
        fabric
            .broadcast(NodeId::Scheduler, &Message::Shutdown)
            .unwrap();
        assert!(a.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_some());
        assert!(s.try_recv().unwrap().is_none());
    }
}
