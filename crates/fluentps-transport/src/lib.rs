//! Messaging substrate for FluentPS.
//!
//! The paper's implementation is derived from PS-Lite, whose transport is
//! ZeroMQ. This crate provides the equivalent layer from scratch:
//!
//! * [`msg`] — the message vocabulary exchanged between workers, servers and
//!   the scheduler (`sPush`/`sPull` requests carry the sender's *progress*,
//!   which is the load-bearing difference from vanilla PS-Lite: progress is
//!   reported to the servers, not to a centralized scheduler).
//! * [`codec`] — a hand-rolled, versioned binary wire codec over [`bytes`].
//! * [`frame`] — length-prefixed framing for stream transports.
//! * [`inproc`] — an in-process fabric built on `fluentps_util::sync` channels, used by
//!   tests, examples and the threaded engine.
//! * [`tcp`] — a real TCP transport over `std::net` so a FluentPS cluster can
//!   run as separate OS processes (see the `tcp_cluster` example).
//! * [`fault`] — a deterministic fault-injection shim over any
//!   [`Mailbox`]/[`Postman`] pair (drop/delay/duplicate/sever), driven by
//!   seeded, content-matched schedules so chaos runs replay bit-for-bit.
//! * [`collect`] — cluster-wide trace collection: a [`CollectorService`]
//!   that merges every node's ring-buffered trace events onto one
//!   clock-aligned timeline, and the [`TraceStreamer`] each node runs to
//!   ship its events there (clock-offset handshake + bounded batching +
//!   drop-oldest backpressure).
//!
//! All transports expose the same [`Mailbox`]/[`Postman`] pair so the engine
//! code in `fluentps-core` is transport-agnostic.

#![warn(missing_docs)]

pub mod codec;
pub mod collect;
pub mod error;
pub mod fault;
pub mod frame;
pub mod inproc;
pub mod msg;
pub mod quant;
pub mod tcp;

pub use collect::{CollectorService, StreamerConfig, StreamerReport, TraceStreamer};
pub use error::TransportError;
pub use fault::{FaultInjector, FaultPlan};
pub use inproc::{Endpoint, Fabric};
pub use msg::{
    CausalCtx, KvPairs, Message, NodeId, WireLogEntry, WirePlacement, NO_LEADER, NO_SPAN,
};

/// Receiving half of a transport endpoint.
pub trait Mailbox: Send {
    /// Block until a message arrives; returns the sender and the message.
    fn recv(&self) -> Result<(NodeId, Message), TransportError>;

    /// Non-blocking receive; `Ok(None)` when no message is queued.
    fn try_recv(&self) -> Result<Option<(NodeId, Message)>, TransportError>;

    /// Receive with a timeout; `Ok(None)` when it elapsed with no message.
    fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<(NodeId, Message)>, TransportError>;
}

/// Sending half of a transport endpoint. Cloneable so several threads of one
/// node may send concurrently.
pub trait Postman: Send {
    /// Send `msg` to `to`. Delivery is reliable and per-sender FIFO on all
    /// provided transports.
    fn send(&self, to: NodeId, msg: Message) -> Result<(), TransportError>;

    /// Send a batch of messages, preserving per-destination order. The
    /// default delegates to [`Postman::send`] one message at a time —
    /// message-level semantics (fault injection, simulation) are unchanged
    /// — while transports that can coalesce (TCP) override this to write
    /// all frames for a destination in one syscall with a single flush.
    /// Every message is attempted; the first error (if any) is returned.
    fn send_batch(&self, batch: Vec<(NodeId, Message)>) -> Result<(), TransportError> {
        let mut first_err = None;
        for (to, msg) in batch {
            if let Err(e) = self.send(to, msg) {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}
