//! Message vocabulary of the FluentPS protocol.
//!
//! The two application-level operations are the paper's `sPush` and `sPull`
//! (Section III-B): they are ordinary push/pull of key-value pairs *extended
//! with the sender's progress*, which is what lets each server run its own
//! synchronization condition instead of deferring to a centralized scheduler.

use std::fmt;

use fluentps_obs::TraceEvent;

/// Identifier of a node in a FluentPS cluster.
///
/// The scheduler only monitors liveness and assigns key ranges (Section
/// III-A); servers own parameter shards; workers compute gradients. The
/// collector is a passive observability sink: it never participates in
/// training traffic, it only receives [`Message::TraceBatch`] streams and
/// answers [`Message::ClockPing`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The single scheduler node.
    Scheduler,
    /// The `m`-th parameter server, `m` in `0..M`.
    Server(u32),
    /// The `n`-th worker, `n` in `0..N`.
    Worker(u32),
    /// The central trace collector (at most one per cluster).
    Collector,
    /// The `k`-th supervisor replica of the replicated control plane
    /// (`k` in `0..R`). Replicas elect a leader among themselves; the
    /// leader exercises the scheduler duties (liveness, recovery).
    Supervisor(u32),
}

impl NodeId {
    /// True if this node is a parameter server.
    pub fn is_server(&self) -> bool {
        matches!(self, NodeId::Server(_))
    }

    /// True if this node is a worker.
    pub fn is_worker(&self) -> bool {
        matches!(self, NodeId::Worker(_))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Scheduler => write!(f, "scheduler"),
            NodeId::Server(m) => write!(f, "server{m}"),
            NodeId::Worker(n) => write!(f, "worker{n}"),
            NodeId::Collector => write!(f, "collector"),
            NodeId::Supervisor(k) => write!(f, "supervisor{k}"),
        }
    }
}

/// Sentinel replica id meaning "no known leader" in [`Message::LeaderRedirect`].
pub const NO_LEADER: u32 = u32::MAX;

/// Compact causal context propagated on the wire by [`Message::Traced`].
///
/// `request_id` is seeded-unique per origin (workers pack their id into the
/// high bits, see `fluentps-core`), `attempt` counts retries of the same
/// logical request, and `parent_span` names the span within the request that
/// caused this message. Together they let the collector assemble exact
/// per-request waterfalls with no clock heuristics: every stamped trace
/// event joins its request by `(request_id, attempt)`, and FaultInjector
/// duplicates fold instead of corrupting the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CausalCtx {
    /// Origin-unique request identifier; `0` is reserved as "no context".
    pub request_id: u64,
    /// Retry ordinal of the request (0 = first attempt).
    pub attempt: u16,
    /// Span id within the request that produced this message, or
    /// `u32::MAX` when the sender tracks no spans.
    pub parent_span: u32,
}

/// Sentinel `parent_span` meaning "no span tracked".
pub const NO_SPAN: u32 = u32::MAX;

impl CausalCtx {
    /// A context for `request_id` on its first attempt, no span.
    pub fn new(request_id: u64) -> Self {
        CausalCtx {
            request_id,
            attempt: 0,
            parent_span: NO_SPAN,
        }
    }

    /// Same request, retry ordinal `attempt`.
    pub fn retry(mut self, attempt: u16) -> Self {
        self.attempt = attempt;
        self
    }

    /// Same request, caused by span `span`.
    pub fn span(mut self, span: u32) -> Self {
        self.parent_span = span;
        self
    }

    /// Encoded size on the wire: `request_id` + `attempt` + `parent_span`.
    pub const WIRE_LEN: usize = 8 + 2 + 4;
}

/// One replicated-log entry carried on the wire by
/// [`Message::AppendEntries`]. The command is opaque to the transport: the
/// control plane in `fluentps-core` defines its own command vocabulary and
/// byte codec, keeping the wire layer ignorant of control-plane semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLogEntry {
    /// Term in which the entry was appended by a leader.
    pub term: u64,
    /// 1-based position of the entry in the replicated log.
    pub index: u64,
    /// Opaque encoded control-plane command.
    pub cmd: Vec<u8>,
}

/// A batch of key-value pairs, PS-Lite style: parallel arrays of keys, a
/// flattened value buffer and a per-key length array.
///
/// Invariant: `lens.len() == keys.len()` and `lens.iter().sum() == vals.len()`.
///
/// ```
/// use fluentps_transport::KvPairs;
/// let kv = KvPairs::from_slices(&[(7, &[1.0, 2.0][..]), (9, &[3.0][..])]);
/// assert!(kv.is_consistent());
/// let items: Vec<_> = kv.iter().collect();
/// assert_eq!(items[1], (9, &[3.0f32][..]));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KvPairs {
    /// Parameter keys, strictly the application's (possibly EPS-remapped) keys.
    pub keys: Vec<u64>,
    /// All values, concatenated in `keys` order.
    pub vals: Vec<f32>,
    /// Length of each key's value slice.
    pub lens: Vec<u32>,
}

impl KvPairs {
    /// Build a `KvPairs` from per-key slices, computing `lens` automatically.
    pub fn from_slices(entries: &[(u64, &[f32])]) -> Self {
        let mut kv = KvPairs::default();
        for (k, v) in entries {
            kv.keys.push(*k);
            kv.lens.push(v.len() as u32);
            kv.vals.extend_from_slice(v);
        }
        kv
    }

    /// A single-key batch.
    pub fn single(key: u64, vals: Vec<f32>) -> Self {
        KvPairs {
            keys: vec![key],
            lens: vec![vals.len() as u32],
            vals,
        }
    }

    /// Check the structural invariant.
    pub fn is_consistent(&self) -> bool {
        self.keys.len() == self.lens.len()
            && self.lens.iter().map(|&l| l as usize).sum::<usize>() == self.vals.len()
    }

    /// Number of keys in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the batch carries no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate `(key, value-slice)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        let mut offset = 0usize;
        self.keys.iter().zip(self.lens.iter()).map(move |(&k, &l)| {
            let s = &self.vals[offset..offset + l as usize];
            offset += l as usize;
            (k, s)
        })
    }

    /// Total wire size of the value payload in bytes (used by the simulator's
    /// bandwidth model and by communication accounting).
    pub fn payload_bytes(&self) -> usize {
        self.keys.len() * 8 + self.lens.len() * 4 + self.vals.len() * 4
    }
}

/// One entry of a placement table carried on the wire by
/// [`Message::RouteUpdate`]. Mirrors the EPS `Placement` struct in
/// `fluentps-core` (which transport cannot depend on) field for field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePlacement {
    /// The application's original parameter key.
    pub orig_key: u64,
    /// The EPS-remapped wire key.
    pub new_key: u64,
    /// Owning server.
    pub server: u32,
    /// Offset of this slice inside the original parameter.
    pub offset: u32,
    /// Length of this slice.
    pub len: u32,
}

/// One message of the FluentPS protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// `sPush(keys, grads, progress)` — worker pushes the gradients of its
    /// current iteration together with that iteration index (Algorithm 1,
    /// worker line 4).
    SPush {
        /// Index of the pushing worker.
        worker: u32,
        /// The iteration these gradients were computed in.
        progress: u64,
        /// Gradient payload.
        kv: KvPairs,
    },
    /// `sPull(keys, progress)` — worker asks for the parameters it needs for
    /// iteration `progress + 1` (Algorithm 1, worker line 5).
    SPull {
        /// Index of the pulling worker.
        worker: u32,
        /// The worker's current progress; the server indexes its lazy pull
        /// buffer by this value.
        progress: u64,
        /// Keys requested.
        keys: Vec<u64>,
    },
    /// Server acknowledges a push (Algorithm 1, server line 24).
    PushAck {
        /// Responding server.
        server: u32,
        /// Echo of the pushed progress.
        progress: u64,
    },
    /// Server answers a pull, either immediately or lazily after the push
    /// condition fires.
    PullResponse {
        /// Responding server.
        server: u32,
        /// Echo of the pull's progress.
        progress: u64,
        /// Parameter payload.
        kv: KvPairs,
        /// Server-side shard version (`V_train`) at response time; workers may
        /// use it for staleness diagnostics.
        version: u64,
    },
    /// Node announces itself to the scheduler (or to a server in tests).
    Register {
        /// Who is registering.
        node: NodeId,
    },
    /// Scheduler confirms a registration and communicates cluster geometry.
    RegisterAck {
        /// Total number of workers.
        num_workers: u32,
        /// Total number of servers.
        num_servers: u32,
    },
    /// Liveness heartbeat (scheduler duty, Section III-A).
    Heartbeat {
        /// Sender.
        node: NodeId,
        /// Monotone sequence number.
        seq: u64,
    },
    /// A control barrier used during startup/shutdown of engines.
    Barrier {
        /// Barrier group (e.g. all workers = 0, all servers = 1).
        group: u32,
        /// Sequence number of the barrier.
        seq: u64,
    },
    /// Orderly shutdown request.
    Shutdown,
    /// Recovery: install parameters into a shard verbatim (no gradient
    /// semantics). Sent by a supervisor when a dead server's keys are
    /// adopted by a survivor, or when seeding a replacement from a
    /// checkpoint.
    Install {
        /// Parameters to install, keyed by wire key.
        kv: KvPairs,
    },
    /// Recovery: a new key placement after a server died and its slices
    /// were remapped. Workers rebuild their router from this.
    RouteUpdate {
        /// The complete new placement table.
        placements: Vec<WirePlacement>,
    },
    /// Observability: a batch of trace events streamed from one node to the
    /// central collector. Each batch is self-describing: it carries the
    /// sender's current clock-offset estimate and its cumulative emit/drop
    /// accounting, so the collector can align timestamps and verify
    /// `received + dropped == emitted` without per-connection state.
    TraceBatch {
        /// The node whose ring buffer produced these events.
        node: NodeId,
        /// The sender's estimated offset to the collector clock, in seconds
        /// (add to a sender timestamp to land on the collector timeline).
        offset_secs: f64,
        /// Monotone per-sender batch sequence number (gap detection).
        batch_seq: u64,
        /// Total events the sender's tracer has recorded so far.
        emitted: u64,
        /// Total events lost at the sender so far (ring overwrites before
        /// streaming plus send failures).
        dropped: u64,
        /// The events, in the sender's record order.
        events: Vec<TraceEvent>,
    },
    /// Observability: clock-offset probe. The sender stamps its local send
    /// time; the collector echoes it back in a [`Message::ClockPong`]
    /// together with its own receive time (NTP-style RTT-midpoint
    /// estimation).
    ClockPing {
        /// The probing node.
        node: NodeId,
        /// Probe sequence number, echoed in the pong.
        seq: u64,
        /// Sender-local send timestamp in seconds.
        t_send: f64,
    },
    /// Observability: collector's answer to a [`Message::ClockPing`].
    ClockPong {
        /// Echo of the ping's sequence number.
        seq: u64,
        /// Echo of the ping's sender-local send timestamp.
        t_send: f64,
        /// Collector-local timestamp when the ping was processed.
        t_collector: f64,
    },
    /// Consensus: a candidate supervisor replica solicits a vote for a term
    /// (Raft-style leader election among control-plane replicas).
    VoteRequest {
        /// Term the candidate is campaigning for.
        term: u64,
        /// Replica id of the candidate.
        candidate: u32,
        /// Index of the candidate's last log entry (0 = empty log).
        last_log_index: u64,
        /// Term of the candidate's last log entry (0 = empty log).
        last_log_term: u64,
    },
    /// Consensus: a replica's answer to a [`Message::VoteRequest`].
    VoteResponse {
        /// The voter's current term (lets a stale candidate catch up).
        term: u64,
        /// Replica id of the voter.
        voter: u32,
        /// Whether the vote was granted for `term`.
        granted: bool,
    },
    /// Consensus: leader replicates log entries (or an empty heartbeat) to a
    /// follower and advertises its commit index.
    AppendEntries {
        /// The leader's current term.
        term: u64,
        /// Replica id of the leader.
        leader: u32,
        /// Index of the entry immediately preceding `entries` (0 = start).
        prev_index: u64,
        /// Term of the entry at `prev_index` (0 if `prev_index == 0`).
        prev_term: u64,
        /// The leader's commit index.
        commit: u64,
        /// Entries to append after `prev_index` (may be empty).
        entries: Vec<WireLogEntry>,
    },
    /// Consensus: follower's answer to an [`Message::AppendEntries`].
    AppendAck {
        /// The follower's current term.
        term: u64,
        /// Replica id of the follower.
        follower: u32,
        /// Whether the consistency check at `prev_index` passed and the
        /// entries were appended.
        ok: bool,
        /// Highest log index the follower now matches the leader up to
        /// (on failure: a hint for the leader's next-index backoff).
        match_index: u64,
    },
    /// Control plane: a non-leader supervisor replica tells a node that
    /// heartbeated it where the current leader is believed to live
    /// ([`NO_LEADER`] when the replica knows of none).
    LeaderRedirect {
        /// The redirecting replica's current term.
        term: u64,
        /// Believed leader replica id, or [`NO_LEADER`].
        leader: u32,
    },
    /// An inner message annotated with a [`CausalCtx`]. The envelope is
    /// transparent to routing: receivers peel it with
    /// [`Message::split_ctx`], stamp their trace events with the context,
    /// and handle the inner message as if it had arrived bare. Nesting is
    /// rejected at decode time — one context per wire message.
    Traced {
        /// The causal context of the request this message belongs to.
        ctx: CausalCtx,
        /// The annotated message (never itself `Traced`).
        inner: Box<Message>,
    },
}

impl Message {
    /// Approximate wire payload size in bytes; used for communication-time
    /// accounting in the simulator and statistics.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Message::SPush { kv, .. } => 16 + kv.payload_bytes(),
            Message::SPull { keys, .. } => 16 + keys.len() * 8,
            Message::PushAck { .. } => 12,
            Message::PullResponse { kv, .. } => 24 + kv.payload_bytes(),
            Message::Register { .. } => 8,
            Message::RegisterAck { .. } => 8,
            Message::Heartbeat { .. } => 16,
            Message::Barrier { .. } => 12,
            Message::Shutdown => 1,
            Message::Install { kv } => 4 + kv.payload_bytes(),
            Message::RouteUpdate { placements } => 4 + placements.len() * 28,
            Message::TraceBatch { events, .. } => 41 + events.len() * 73,
            Message::ClockPing { .. } => 21,
            Message::ClockPong { .. } => 24,
            Message::VoteRequest { .. } => 28,
            Message::VoteResponse { .. } => 13,
            Message::AppendEntries { entries, .. } => {
                36 + entries.iter().map(|e| 20 + e.cmd.len()).sum::<usize>()
            }
            Message::AppendAck { .. } => 21,
            Message::LeaderRedirect { .. } => 12,
            Message::Traced { inner, .. } => CausalCtx::WIRE_LEN + inner.payload_bytes(),
        }
    }

    /// Wrap `self` in a [`Message::Traced`] envelope carrying `ctx`.
    /// Wrapping an already-`Traced` message replaces its context instead of
    /// nesting (the codec rejects nested envelopes).
    pub fn with_ctx(self, ctx: CausalCtx) -> Message {
        match self {
            Message::Traced { inner, .. } => Message::Traced { ctx, inner },
            other => Message::Traced {
                ctx,
                inner: Box::new(other),
            },
        }
    }

    /// Peel a [`Message::Traced`] envelope: returns the context (if any)
    /// and the bare inner message.
    pub fn split_ctx(self) -> (Option<CausalCtx>, Message) {
        match self {
            Message::Traced { ctx, inner } => (Some(ctx), *inner),
            other => (None, other),
        }
    }

    /// The causal context of this message, without consuming it.
    pub fn ctx(&self) -> Option<CausalCtx> {
        match self {
            Message::Traced { ctx, .. } => Some(*ctx),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_from_slices_builds_consistent_batch() {
        let kv = KvPairs::from_slices(&[(3, &[1.0, 2.0][..]), (9, &[4.0][..])]);
        assert!(kv.is_consistent());
        assert_eq!(kv.len(), 2);
        let items: Vec<_> = kv.iter().collect();
        assert_eq!(items[0], (3, &[1.0f32, 2.0][..]));
        assert_eq!(items[1], (9, &[4.0f32][..]));
    }

    #[test]
    fn kv_single_is_consistent() {
        let kv = KvPairs::single(7, vec![0.5; 10]);
        assert!(kv.is_consistent());
        assert_eq!(kv.payload_bytes(), 8 + 4 + 40);
    }

    #[test]
    fn kv_inconsistency_detected() {
        let kv = KvPairs {
            keys: vec![1, 2],
            vals: vec![0.0; 3],
            lens: vec![1, 1],
        };
        assert!(!kv.is_consistent());
    }

    #[test]
    fn empty_kv_is_consistent_and_empty() {
        let kv = KvPairs::default();
        assert!(kv.is_consistent());
        assert!(kv.is_empty());
        assert_eq!(kv.iter().count(), 0);
    }

    #[test]
    fn node_id_kind_predicates() {
        assert!(NodeId::Server(0).is_server());
        assert!(!NodeId::Server(0).is_worker());
        assert!(NodeId::Worker(3).is_worker());
        assert!(!NodeId::Scheduler.is_server());
        assert!(!NodeId::Collector.is_server());
        assert!(!NodeId::Collector.is_worker());
        assert_eq!(NodeId::Worker(2).to_string(), "worker2");
        assert_eq!(NodeId::Collector.to_string(), "collector");
        assert!(!NodeId::Supervisor(1).is_server());
        assert!(!NodeId::Supervisor(1).is_worker());
        assert_eq!(NodeId::Supervisor(1).to_string(), "supervisor1");
    }

    #[test]
    fn traced_envelope_wraps_peels_and_accounts() {
        let bare = Message::PushAck {
            server: 1,
            progress: 4,
        };
        let ctx = CausalCtx::new(99).retry(2).span(7);
        let wrapped = bare.clone().with_ctx(ctx);
        assert_eq!(wrapped.ctx(), Some(ctx));
        assert_eq!(
            wrapped.payload_bytes(),
            CausalCtx::WIRE_LEN + bare.payload_bytes()
        );
        // Re-wrapping replaces the context rather than nesting.
        let ctx2 = CausalCtx::new(100);
        let rewrapped = wrapped.with_ctx(ctx2);
        let (got, inner) = rewrapped.split_ctx();
        assert_eq!(got, Some(ctx2));
        assert_eq!(inner, bare);
        // A bare message splits to no context.
        let (none, same) = bare.clone().split_ctx();
        assert_eq!(none, None);
        assert_eq!(same, bare);
        assert_eq!(bare.ctx(), None);
    }

    #[test]
    fn message_payload_bytes_track_kv_size() {
        let small = Message::SPush {
            worker: 0,
            progress: 0,
            kv: KvPairs::single(0, vec![0.0; 4]),
        };
        let big = Message::SPush {
            worker: 0,
            progress: 0,
            kv: KvPairs::single(0, vec![0.0; 400]),
        };
        assert!(big.payload_bytes() > small.payload_bytes());
    }
}
