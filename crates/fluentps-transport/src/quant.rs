//! Lossy gradient quantization for the wire.
//!
//! Parameter-server traffic is dominated by gradient values whose precision
//! requirements are modest; halving their wire width halves the paper's
//! bottleneck resource. This module provides two codecs:
//!
//! * [`f16`] — IEEE-754 binary16 conversion (software; no `half` crate in
//!   the offline set). Relative error ≤ 2⁻¹¹ for normal values.
//! * [`QuantizedKv`] — a `KvPairs` payload with f16-encoded values, plus
//!   exact round-trip of non-finite values.
//!
//! Quantization is an *extension* over the paper (its Gaia discussion
//! motivates reducing insignificant traffic); the ablation harness measures
//! the bytes saved. The default transport remains full-precision.

use crate::msg::KvPairs;

/// Software IEEE-754 binary16 conversion.
pub mod f16 {
    /// Convert an `f32` to its nearest binary16 bit pattern (round to
    /// nearest even; overflow saturates to ±∞; subnormals flush through).
    pub fn from_f32(x: f32) -> u16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
            let m = if mant != 0 { 0x0200 } else { 0 };
            return sign | 0x7C00 | m;
        }
        // Re-bias: f32 bias 127 → f16 bias 15.
        let new_exp = exp - 127 + 15;
        if new_exp >= 0x1F {
            return sign | 0x7C00; // overflow → ±∞
        }
        if new_exp <= 0 {
            // Subnormal (or underflow to zero).
            if new_exp < -10 {
                return sign;
            }
            let full_mant = mant | 0x0080_0000;
            let shift = (14 - new_exp) as u32;
            let half = 1u32 << (shift - 1);
            let rounded = (full_mant + half) >> shift;
            return sign | rounded as u16;
        }
        // Normal: round mantissa 23 → 10 bits, to nearest even.
        let shift = 13u32;
        let half = 1u32 << (shift - 1);
        let lsb = 1u32 << shift;
        let mut m = mant + (half - 1) + ((mant >> shift) & 1);
        let mut e = new_exp as u32;
        if m & 0x0080_0000 != 0 {
            // Mantissa rounding carried into the exponent.
            m = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        } else {
            m >>= shift;
            m &= (lsb - 1) >> shift << shift | 0x3FF; // keep 10 bits
            m &= 0x3FF;
        }
        sign | ((e as u16) << 10) | (m as u16)
    }

    /// Convert a binary16 bit pattern back to `f32` (exact).
    pub fn to_f32(h: u16) -> f32 {
        let sign = ((h & 0x8000) as u32) << 16;
        let exp = ((h >> 10) & 0x1F) as u32;
        let mant = (h & 0x3FF) as u32;
        let bits = match (exp, mant) {
            (0, 0) => sign, // ±0
            (0, m) => {
                // Subnormal: value = m · 2⁻²⁴ with m < 2¹⁰. Normalize:
                // m = 1.xxx · 2^(L−1) where L is m's bit length, so the
                // f32 exponent is (L − 25) + 127 = L + 102.
                let l = 32 - m.leading_zeros(); // 1..=10
                let e = l + 102;
                let m32 = (m << (24 - l)) & 0x007F_FFFF;
                sign | (e << 23) | m32
            }
            (0x1F, 0) => sign | 0x7F80_0000,             // ±∞
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13), // NaN
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }
}

/// A `KvPairs` with f16-compressed values.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedKv {
    /// Keys, as in [`KvPairs`].
    pub keys: Vec<u64>,
    /// Per-key lengths.
    pub lens: Vec<u32>,
    /// f16 bit patterns, concatenated.
    pub vals: Vec<u16>,
}

impl QuantizedKv {
    /// Compress a full-precision payload.
    pub fn compress(kv: &KvPairs) -> Self {
        QuantizedKv {
            keys: kv.keys.clone(),
            lens: kv.lens.clone(),
            vals: kv.vals.iter().map(|&v| f16::from_f32(v)).collect(),
        }
    }

    /// Decompress back to `f32` values.
    pub fn decompress(&self) -> KvPairs {
        KvPairs {
            keys: self.keys.clone(),
            lens: self.lens.clone(),
            vals: self.vals.iter().map(|&h| f16::to_f32(h)).collect(),
        }
    }

    /// Wire payload bytes of the compressed form.
    pub fn payload_bytes(&self) -> usize {
        self.keys.len() * 8 + self.lens.len() * 4 + self.vals.len() * 2
    }

    /// Bytes saved relative to the full-precision payload.
    pub fn savings(&self, original: &KvPairs) -> usize {
        original
            .payload_bytes()
            .saturating_sub(self.payload_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_for_representable_values() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, 6.1035156e-5] {
            let h = f16::from_f32(x);
            assert_eq!(f16::to_f32(h), x, "value {x}");
        }
    }

    #[test]
    fn f16_relative_error_bounded_for_normals() {
        let mut x = 1e-3f32;
        while x < 1e4 {
            for v in [x, -x] {
                let back = f16::to_f32(f16::from_f32(v));
                let rel = ((back - v) / v).abs();
                assert!(rel <= 1.0 / 2048.0 + 1e-7, "value {v}: rel {rel}");
            }
            x *= 1.37;
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(f16::to_f32(f16::from_f32(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            f16::to_f32(f16::from_f32(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(f16::to_f32(f16::from_f32(f32::NAN)).is_nan());
        // Overflow saturates.
        assert_eq!(f16::to_f32(f16::from_f32(1e9)), f32::INFINITY);
        // Deep underflow flushes to zero.
        assert_eq!(f16::to_f32(f16::from_f32(1e-12)), 0.0);
    }

    #[test]
    fn f16_subnormals_roundtrip_with_tolerance() {
        // Smallest f16 subnormal is 2⁻²⁴ ≈ 5.96e-8.
        for x in [6e-8f32, 1e-6, 3e-5] {
            let back = f16::to_f32(f16::from_f32(x));
            assert!(
                (back - x).abs() <= 6e-8,
                "subnormal {x} came back as {back}"
            );
        }
    }

    #[test]
    fn quantized_kv_halves_value_bytes() {
        let kv = KvPairs::single(3, vec![0.125; 1000]);
        let q = QuantizedKv::compress(&kv);
        assert_eq!(q.payload_bytes(), 8 + 4 + 2000);
        assert_eq!(q.savings(&kv), 2000);
        // 0.125 is exactly representable → lossless here.
        assert_eq!(q.decompress(), kv);
    }

    #[test]
    fn quantized_kv_preserves_structure_for_lossy_values() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 * 0.31).sin() * 3.0).collect();
        let kv = KvPairs::from_slices(&[(1, &vals[..40]), (2, &vals[40..])]);
        let back = QuantizedKv::compress(&kv).decompress();
        assert!(back.is_consistent());
        assert_eq!(back.keys, kv.keys);
        assert_eq!(back.lens, kv.lens);
        for (a, b) in kv.vals.iter().zip(&back.vals) {
            assert!((a - b).abs() <= a.abs() / 1000.0 + 1e-6);
        }
    }
}
