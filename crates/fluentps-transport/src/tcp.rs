//! TCP transport over `std::net`.
//!
//! Connections are unidirectional: a node dials a peer the first time it
//! sends to it, and replies flow over a connection the peer dials back (the
//! address book tells everyone where everyone listens). Every accepted stream
//! gets a reader thread that decodes frames into the node's inbox. This keeps
//! the implementation small while preserving the properties the engine needs:
//! reliable, per-sender FIFO delivery.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fluentps_obs::{EventKind, Profiler, RecordArgs, Tracer, NO_ID};
use fluentps_util::buf::BytesMut;
use fluentps_util::sync::Mutex;
use fluentps_util::sync::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::TransportError;
use crate::frame::{encode_frame_into_profiled, wire_len, FrameReader};
use crate::msg::{Message, NodeId};
use crate::{Mailbox, Postman};

/// Mapping from node identity to listening address, distributed out-of-band
/// (mirrors how PS-Lite nodes learn the scheduler address from environment
/// variables).
///
/// The book is internally shared: clones hand out views of the *same*
/// directory, so re-registering a node (e.g. a replacement server bound to
/// a fresh port after a crash) is immediately visible to every postman
/// built from any clone. A postman whose connection breaks redials through
/// the book, which is how workers find a recovered server.
#[derive(Clone, Default)]
pub struct AddressBook {
    addrs: Arc<fluentps_util::sync::RwLock<HashMap<NodeId, SocketAddr>>>,
}

impl AddressBook {
    /// Empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or update) where `node` listens. Visible through every
    /// clone of this book.
    pub fn insert(&self, node: NodeId, addr: SocketAddr) {
        self.addrs.write().insert(node, addr);
    }

    /// Look up a node's listening address.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.read().get(&node).copied()
    }

    /// A deep copy whose entries no longer track this book (for building
    /// deliberately stale views in tests).
    pub fn detached(&self) -> Self {
        let addrs = self.addrs.read().clone();
        AddressBook {
            addrs: Arc::new(fluentps_util::sync::RwLock::new(addrs)),
        }
    }
}

impl std::fmt::Debug for AddressBook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.addrs.read().iter()).finish()
    }
}

type Envelope = (NodeId, Message);

/// One dialed connection: the socket plus a reusable scratch buffer frames
/// are encoded into before a single `write_all` hands them to the kernel.
/// The buffer grows to the largest frame/batch written and stays there —
/// the per-frame `BytesMut` allocation of the old path is gone, and because
/// the whole frame (or batch of frames) reaches the socket in one write
/// there is no per-message flush (DESIGN.md § wire path).
struct Conn {
    stream: TcpStream,
    buf: BytesMut,
}

struct Shared {
    node: NodeId,
    book: AddressBook,
    conns: Mutex<HashMap<NodeId, Conn>>,
    inbox_tx: Sender<Envelope>,
    closed: AtomicBool,
    tracer: Tracer,
    profiler: Profiler,
}

/// `(shard, worker)` ids for a trace event about traffic between `local`
/// and `peer`: the server index supplies the shard lane, the worker index
/// the worker lane, whichever side each lives on.
fn trace_ids(local: NodeId, peer: NodeId) -> (u32, u32) {
    let pick = |want_server: bool| {
        [local, peer]
            .into_iter()
            .find_map(|n| match (want_server, n) {
                (true, NodeId::Server(m)) => Some(m),
                (false, NodeId::Worker(w)) => Some(w),
                _ => None,
            })
            .unwrap_or(NO_ID)
    };
    (pick(true), pick(false))
}

/// A TCP endpoint: listener plus dialed connections.
pub struct TcpNode {
    shared: Arc<Shared>,
    inbox_rx: Receiver<Envelope>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl TcpNode {
    /// Bind `node`'s listener on `addr` (use port 0 to let the OS choose; the
    /// actual address is available via [`TcpNode::local_addr`]).
    pub fn bind(node: NodeId, addr: SocketAddr, book: AddressBook) -> Result<Self, TransportError> {
        Self::bind_traced(node, addr, book, Tracer::disabled())
    }

    /// [`TcpNode::bind`] with frame-level tracing: every frame written by
    /// this node's postmen records a `wire_send` event and every frame
    /// decoded off an accepted stream records a `wire_recv`, both carrying
    /// the exact on-the-wire byte count.
    pub fn bind_traced(
        node: NodeId,
        addr: SocketAddr,
        book: AddressBook,
        tracer: Tracer,
    ) -> Result<Self, TransportError> {
        Self::bind_profiled(node, addr, book, tracer, Profiler::disabled())
    }

    /// [`TcpNode::bind_traced`] with span profiling: every frame this
    /// node's postmen encode runs under a `wire/encode` span and every
    /// frame decoded off an accepted stream under `wire/decode` (the
    /// blocking socket reads stay outside the spans — waiting is wire
    /// latency, not decode cost).
    pub fn bind_profiled(
        node: NodeId,
        addr: SocketAddr,
        book: AddressBook,
        tracer: Tracer,
        profiler: Profiler,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (inbox_tx, inbox_rx) = unbounded();
        let shared = Arc::new(Shared {
            node,
            book,
            conns: Mutex::new(HashMap::new()),
            inbox_tx,
            closed: AtomicBool::new(false),
            tracer,
            profiler,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("tcp-accept-{node}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(TcpNode {
            shared,
            inbox_rx,
            accept_thread: Some(accept_thread),
            local_addr,
        })
    }

    /// The address this node actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The node identity.
    pub fn node(&self) -> NodeId {
        self.shared.node
    }

    /// A cloneable sending handle.
    pub fn postman(&self) -> TcpPostman {
        TcpPostman {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop accepting and sending. Reader threads exit when their peers close.
    pub fn shutdown(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.conns.lock().clear();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.closed.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                spawn_reader(stream, Arc::clone(&shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn spawn_reader(stream: TcpStream, shared: Arc<Shared>) {
    std::thread::Builder::new()
        .name(format!("tcp-reader-{}", shared.node))
        .spawn(move || {
            let mut reader = std::io::BufReader::new(stream);
            let mut frames = FrameReader::new();
            // Read frames until the peer closes or the stream corrupts.
            // The frame body buffer is reused across frames and decoded in
            // place — no per-frame allocation on the receive path.
            while let Ok((from, msg)) = frames.read_from_profiled(&mut reader, &shared.profiler) {
                if shared.tracer.is_enabled() {
                    let (shard, worker) = trace_ids(shared.node, from);
                    shared.tracer.record(
                        EventKind::WireRecv,
                        RecordArgs::new()
                            .shard(shard)
                            .worker(worker)
                            .bytes(wire_len(&msg) as u64),
                    );
                }
                if shared.inbox_tx.send((from, msg)).is_err() {
                    break;
                }
            }
        })
        .expect("spawn reader thread");
}

impl Mailbox for TcpNode {
    fn recv(&self) -> Result<(NodeId, Message), TransportError> {
        self.inbox_rx
            .recv()
            .map_err(|_| TransportError::Disconnected)
    }

    fn try_recv(&self) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.inbox_rx.try_recv() {
            Ok(env) => Ok(Some(env)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(NodeId, Message)>, TransportError> {
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Disconnected),
        }
    }
}

/// Sending handle of a [`TcpNode`].
#[derive(Clone)]
pub struct TcpPostman {
    shared: Arc<Shared>,
}

impl TcpPostman {
    /// Get (or dial) the connection to `to`.
    fn ensure_conn<'c>(
        &self,
        conns: &'c mut HashMap<NodeId, Conn>,
        to: NodeId,
    ) -> Result<&'c mut Conn, TransportError> {
        if let std::collections::hash_map::Entry::Vacant(e) = conns.entry(to) {
            let addr = self
                .shared
                .book
                .get(to)
                .ok_or(TransportError::UnknownNode(to))?;
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            e.insert(Conn {
                stream,
                buf: BytesMut::new(),
            });
        }
        Ok(conns.get_mut(&to).expect("just inserted"))
    }

    /// Hand `conn.buf` to the kernel in one write and clear it for reuse.
    /// On error the connection is dropped so a later send can redial.
    fn write_out(
        &self,
        conns: &mut HashMap<NodeId, Conn>,
        to: NodeId,
    ) -> Result<(), TransportError> {
        let conn = conns.get_mut(&to).expect("connection present");
        let result = conn
            .stream
            .write_all(conn.buf.as_ref())
            .map_err(TransportError::from);
        conn.buf.clear();
        if result.is_err() {
            conns.remove(&to);
        }
        result
    }

    fn trace_send(&self, to: NodeId, bytes: u64) {
        if self.shared.tracer.is_enabled() {
            let (shard, worker) = trace_ids(self.shared.node, to);
            self.shared.tracer.record(
                EventKind::WireSend,
                RecordArgs::new().shard(shard).worker(worker).bytes(bytes),
            );
        }
    }
}

impl Postman for TcpPostman {
    fn send(&self, to: NodeId, msg: Message) -> Result<(), TransportError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        let from = self.shared.node;
        let mut conns = self.shared.conns.lock();
        let conn = self.ensure_conn(&mut conns, to)?;
        let bytes =
            encode_frame_into_profiled(from, &msg, &mut conn.buf, &self.shared.profiler) as u64;
        let result = self.write_out(&mut conns, to);
        if result.is_ok() {
            self.trace_send(to, bytes);
        }
        result
    }

    /// Coalesced send: frames for the same destination are encoded
    /// back-to-back into that connection's scratch buffer and written with
    /// a *single* `write_all` per destination — one flush per drained
    /// batch instead of one per message. Per-destination FIFO order is
    /// preserved; a failure on one destination does not stop the others
    /// (the first error is returned after every destination is attempted).
    fn send_batch(&self, batch: Vec<(NodeId, Message)>) -> Result<(), TransportError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        let from = self.shared.node;
        let mut conns = self.shared.conns.lock();
        let mut first_err = None;
        // Destinations in first-appearance order, with per-message byte
        // counts kept for tracing after the destination's write succeeds.
        let mut order: Vec<NodeId> = Vec::new();
        let mut traced: Vec<(NodeId, u64)> = Vec::with_capacity(batch.len());
        for (to, msg) in &batch {
            match self.ensure_conn(&mut conns, *to) {
                Ok(conn) => {
                    if conn.buf.is_empty() {
                        order.push(*to);
                    }
                    let bytes =
                        encode_frame_into_profiled(from, msg, &mut conn.buf, &self.shared.profiler)
                            as u64;
                    traced.push((*to, bytes));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        for to in order {
            match self.write_out(&mut conns, to) {
                Ok(()) => {
                    for &(t, bytes) in traced.iter().filter(|(t, _)| *t == to) {
                        self.trace_send(t, bytes);
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::KvPairs;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn two_nodes_exchange_messages() {
        let book = AddressBook::new();
        let server = TcpNode::bind(NodeId::Server(0), loopback(), book.clone()).unwrap();
        book.insert(NodeId::Server(0), server.local_addr());
        let worker = TcpNode::bind(NodeId::Worker(0), loopback(), book.clone()).unwrap();

        let msg = Message::SPush {
            worker: 0,
            progress: 5,
            kv: KvPairs::single(1, vec![1.0, 2.0]),
        };
        worker
            .postman()
            .send(NodeId::Server(0), msg.clone())
            .unwrap();
        let (from, got) = server
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("message within timeout");
        assert_eq!(from, NodeId::Worker(0));
        assert_eq!(got, msg);
    }

    #[test]
    fn reply_flows_over_dialed_back_connection() {
        let book = AddressBook::new();
        let server = TcpNode::bind(NodeId::Server(0), loopback(), book.clone()).unwrap();
        book.insert(NodeId::Server(0), server.local_addr());
        let worker = TcpNode::bind(NodeId::Worker(0), loopback(), book.clone()).unwrap();
        let book2 = book.clone();
        book2.insert(NodeId::Worker(0), worker.local_addr());
        // Server needs the worker's address to reply; rebuild its postman view
        // by binding a fresh server with the complete book in real usage. Here
        // we simply dial from a postman constructed with the full book.
        let full_server = TcpNode::bind(NodeId::Server(1), loopback(), book2).unwrap();

        worker
            .postman()
            .send(NodeId::Server(0), Message::Shutdown)
            .unwrap();
        assert!(server
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .is_some());

        full_server
            .postman()
            .send(
                NodeId::Worker(0),
                Message::PushAck {
                    server: 1,
                    progress: 0,
                },
            )
            .unwrap();
        let (from, msg) = worker
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("reply");
        assert_eq!(from, NodeId::Server(1));
        assert_eq!(
            msg,
            Message::PushAck {
                server: 1,
                progress: 0
            }
        );
    }

    #[test]
    fn traced_nodes_record_frame_level_wire_events() {
        use fluentps_obs::TraceCollector;

        let collector = TraceCollector::wall(1024);
        let book = AddressBook::new();
        let server = TcpNode::bind_traced(
            NodeId::Server(2),
            loopback(),
            book.clone(),
            collector.tracer(),
        )
        .unwrap();
        book.insert(NodeId::Server(2), server.local_addr());
        let worker =
            TcpNode::bind_traced(NodeId::Worker(7), loopback(), book, collector.tracer()).unwrap();

        let msg = Message::SPull {
            worker: 7,
            progress: 3,
            keys: vec![1, 2, 3],
        };
        let expected_bytes = wire_len(&msg) as u64;
        worker
            .postman()
            .send(NodeId::Server(2), msg.clone())
            .unwrap();
        let (_, got) = server
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("message within timeout");
        assert_eq!(got, msg);

        let trace = collector.snapshot();
        assert_eq!(trace.count(EventKind::WireSend), 1);
        assert_eq!(trace.count(EventKind::WireRecv), 1);
        for ev in &trace.events {
            assert_eq!(ev.bytes, expected_bytes);
            assert_eq!(ev.shard, 2);
            assert_eq!(ev.worker, 7);
        }
    }

    #[test]
    fn send_to_unlisted_node_fails() {
        let book = AddressBook::new();
        let node = TcpNode::bind(NodeId::Worker(0), loopback(), book).unwrap();
        let err = node.postman().send(NodeId::Server(3), Message::Shutdown);
        assert!(matches!(err, Err(TransportError::UnknownNode(_))));
    }

    #[test]
    fn many_messages_preserve_order() {
        let book = AddressBook::new();
        let server = TcpNode::bind(NodeId::Server(0), loopback(), book.clone()).unwrap();
        book.insert(NodeId::Server(0), server.local_addr());
        let worker = TcpNode::bind(NodeId::Worker(0), loopback(), book).unwrap();
        let p = worker.postman();
        for seq in 0..500u64 {
            p.send(
                NodeId::Server(0),
                Message::Heartbeat {
                    node: NodeId::Worker(0),
                    seq,
                },
            )
            .unwrap();
        }
        for seq in 0..500u64 {
            let (_, msg) = server
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("heartbeat");
            match msg {
                Message::Heartbeat { seq: s, .. } => assert_eq!(s, seq),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
