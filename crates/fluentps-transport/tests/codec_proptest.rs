//! Property tests: the wire codec must roundtrip every well-formed message
//! and must never panic on arbitrary byte soup.

use fluentps_obs::{EventKind, TraceEvent, KINDS};
use fluentps_transport::codec::{corrupt_at, decode, encode};
use fluentps_transport::msg::{CausalCtx, KvPairs, Message, NodeId};
use fluentps_util::buf::Bytes;
use fluentps_util::proptest::prelude::*;

fn arb_kv() -> impl Strategy<Value = KvPairs> {
    prop::collection::vec(
        (any::<u64>(), prop::collection::vec(any::<f32>(), 0..16)),
        0..8,
    )
    .prop_map(|entries| {
        let refs: Vec<(u64, &[f32])> = entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        KvPairs::from_slices(&refs)
    })
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        Just(NodeId::Scheduler),
        any::<u32>().prop_map(NodeId::Server),
        any::<u32>().prop_map(NodeId::Worker),
        Just(NodeId::Collector),
    ]
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<f64>(),
        any::<f64>(),
        0..KINDS,
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(ts, dur, kind, shard, worker, progress, (v, b, s))| TraceEvent {
                ts,
                dur,
                kind: EventKind::ALL[kind],
                shard,
                worker,
                progress,
                v_train: v,
                bytes: b,
                seq: s,
                // Derive the causal fields from the other draws so they
                // exercise the full range without widening the tuple past
                // proptest's arity limit.
                request_id: s.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                attempt: shard ^ worker,
                parent_span: worker.wrapping_add(1),
            },
        )
}

fn arb_ctx() -> impl Strategy<Value = CausalCtx> {
    (any::<u64>(), any::<u16>(), any::<u32>()).prop_map(|(request_id, attempt, parent_span)| {
        CausalCtx {
            request_id,
            attempt,
            parent_span,
        }
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), arb_kv()).prop_map(|(worker, progress, kv)| {
            Message::SPush {
                worker,
                progress,
                kv,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..32)
        )
            .prop_map(|(worker, progress, keys)| Message::SPull {
                worker,
                progress,
                keys
            }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(server, progress)| Message::PushAck { server, progress }),
        (any::<u32>(), any::<u64>(), any::<u64>(), arb_kv()).prop_map(
            |(server, progress, version, kv)| Message::PullResponse {
                server,
                progress,
                version,
                kv
            }
        ),
        arb_node().prop_map(|node| Message::Register { node }),
        (any::<u32>(), any::<u32>()).prop_map(|(num_workers, num_servers)| {
            Message::RegisterAck {
                num_workers,
                num_servers,
            }
        }),
        (arb_node(), any::<u64>()).prop_map(|(node, seq)| Message::Heartbeat { node, seq }),
        (any::<u32>(), any::<u64>()).prop_map(|(group, seq)| Message::Barrier { group, seq }),
        Just(Message::Shutdown),
        (
            arb_node(),
            any::<f64>(),
            any::<u64>(),
            (any::<u64>(), any::<u64>()),
            prop::collection::vec(arb_event(), 0..8),
        )
            .prop_map(
                |(node, offset_secs, batch_seq, (emitted, dropped), events)| {
                    Message::TraceBatch {
                        node,
                        offset_secs,
                        batch_seq,
                        emitted,
                        dropped,
                        events,
                    }
                }
            ),
        (arb_node(), any::<u64>(), any::<f64>())
            .prop_map(|(node, seq, t_send)| Message::ClockPing { node, seq, t_send }),
        (any::<u64>(), any::<f64>(), any::<f64>()).prop_map(|(seq, t_send, t_collector)| {
            Message::ClockPong {
                seq,
                t_send,
                t_collector,
            }
        }),
        // Traced envelopes around the request/response vocabulary the
        // causal context actually travels on.
        (arb_ctx(), any::<u32>(), any::<u64>(), arb_kv()).prop_map(
            |(ctx, worker, progress, kv)| {
                Message::SPush {
                    worker,
                    progress,
                    kv,
                }
                .with_ctx(ctx)
            }
        ),
        (arb_ctx(), any::<u32>(), any::<u64>()).prop_map(|(ctx, server, progress)| {
            Message::PushAck { server, progress }.with_ctx(ctx)
        }),
    ]
}

proptest! {
    #[test]
    fn roundtrip(msg in arb_message()) {
        let bytes = encode(&msg);
        let back = decode(bytes).expect("well-formed message must decode");
        // NaN != NaN under PartialEq for f32, so compare via bit patterns.
        prop_assert_eq!(format!("{:?}", bitify(&msg)), format!("{:?}", bitify(&back)));
    }

    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(bytes));
    }

    #[test]
    fn truncation_always_errors(msg in arb_message(), frac in 0.0f64..1.0) {
        let bytes = encode(&msg);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(bytes.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn single_byte_corruption_is_never_silent(
        msg in arb_message(),
        frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let bytes = encode(&msg);
        // Every encoding is at least version+tag, so an index always exists;
        // XOR with a non-zero flip guarantees the byte actually changes.
        let idx = (((bytes.len() - 1) as f64) * frac) as usize;
        let corrupted = corrupt_at(&bytes, idx, bytes[idx] ^ flip);
        match decode(corrupted.clone()) {
            // Either the codec notices the damage...
            Err(_) => {}
            // ...or the flipped byte was plain payload, in which case the
            // decoded message must account for every corrupted byte (same
            // encoded length — the strict trailing-bytes check means no
            // silent short misparse) and be canonically stable. Exact byte
            // equality is too strong: Scheduler/Collector node ids carry a
            // don't-care index on the wire.
            Ok(back) => {
                let reencoded = encode(&back);
                prop_assert_eq!(reencoded.len(), corrupted.len());
                let again = decode(reencoded).expect("re-encoded message must decode");
                prop_assert_eq!(format!("{:?}", back), format!("{:?}", again));
            }
        }
    }
}

/// Replace every f32 with its bit pattern so NaN payloads compare equal.
fn bitify(msg: &Message) -> Message {
    let fix = |kv: &KvPairs| KvPairs {
        keys: kv.keys.clone(),
        lens: kv.lens.clone(),
        vals: kv
            .vals
            .iter()
            .map(|v| f32::from_bits(v.to_bits())) // identity, preserves bits
            .collect(),
    };
    match msg {
        Message::SPush {
            worker,
            progress,
            kv,
        } => Message::SPush {
            worker: *worker,
            progress: *progress,
            kv: fix(kv),
        },
        other => other.clone(),
    }
}
