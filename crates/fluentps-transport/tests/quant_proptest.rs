//! Property tests for the f16 quantizer: bounded relative error on normal
//! values, sign preservation, and structure-preserving KvPairs round trips.

use fluentps_transport::msg::KvPairs;
use fluentps_transport::quant::{f16, QuantizedKv};
use fluentps_util::proptest::prelude::*;

proptest! {
    /// For f32 values inside f16's normal range, the round-trip relative
    /// error is at most one half-ULP of the 11-bit significand.
    #[test]
    fn relative_error_bounded_in_normal_range(
        mag in 6.2e-5f32..60000.0,
        neg in any::<bool>(),
    ) {
        let x = if neg { -mag } else { mag };
        let back = f16::to_f32(f16::from_f32(x));
        let rel = ((back - x) / x).abs();
        prop_assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x} back={back} rel={rel}");
    }

    /// Sign is always preserved (including through underflow to zero).
    #[test]
    fn sign_preserved(x in any::<f32>()) {
        prop_assume!(!x.is_nan());
        let back = f16::to_f32(f16::from_f32(x));
        prop_assert_eq!(back.is_sign_negative(), x.is_sign_negative());
    }

    /// Quantization never panics and never produces NaN from non-NaN input.
    #[test]
    fn total_and_nan_free(x in any::<f32>()) {
        let back = f16::to_f32(f16::from_f32(x));
        if !x.is_nan() {
            prop_assert!(!back.is_nan(), "x={x} became NaN");
        }
    }

    /// Round-trip is idempotent: quantizing an already-quantized value is
    /// exact.
    #[test]
    fn idempotent(x in -1e4f32..1e4) {
        let once = f16::to_f32(f16::from_f32(x));
        let twice = f16::to_f32(f16::from_f32(once));
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// KvPairs compression preserves keys/lens exactly and stays consistent.
    #[test]
    fn kv_structure_preserved(
        entries in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(-100.0f32..100.0, 0..12)),
            0..6,
        )
    ) {
        let refs: Vec<(u64, &[f32])> =
            entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let kv = KvPairs::from_slices(&refs);
        let q = QuantizedKv::compress(&kv);
        let back = q.decompress();
        prop_assert!(back.is_consistent());
        prop_assert_eq!(&back.keys, &kv.keys);
        prop_assert_eq!(&back.lens, &kv.lens);
        prop_assert!(q.payload_bytes() <= kv.payload_bytes());
    }
}
