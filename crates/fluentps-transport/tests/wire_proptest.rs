//! Property tests for the coalesced wire path: batching frames into one
//! buffer/write must be invisible to the receiver — the decoded message
//! sequence (order, content, per-link accounting) has to match the
//! one-frame-per-write path exactly, including when a fault plan severs a
//! destination mid-batch.

use fluentps_transport::fault::{FaultAction, FaultInjector, FaultRule, MsgPattern};
use fluentps_transport::frame::{encode_frame_into, write_frame, FrameReader};
use fluentps_transport::{Fabric, FaultPlan, Mailbox, Message, NodeId, Postman};
use fluentps_util::buf::BytesMut;
use fluentps_util::proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        Just(NodeId::Scheduler),
        (0u32..4).prop_map(NodeId::Server),
        (0u32..4).prop_map(NodeId::Worker),
        Just(NodeId::Collector),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            0u32..4,
            0u64..100,
            prop::collection::vec(any::<u64>(), 0..8)
        )
            .prop_map(|(worker, progress, keys)| Message::SPull {
                worker,
                progress,
                keys
            }),
        (0u32..4, 0u64..100).prop_map(|(server, progress)| Message::PushAck { server, progress }),
        (arb_node(), any::<u64>()).prop_map(|(node, seq)| Message::Heartbeat { node, seq }),
        Just(Message::Shutdown),
    ]
}

proptest! {
    /// Coalescing is pure concatenation: N frames encoded back-to-back into
    /// one reused buffer are byte-identical to N individual `write_frame`
    /// calls, and a streaming reader recovers the same (sender, message)
    /// sequence from both.
    #[test]
    fn coalesced_frames_equal_one_frame_per_write(
        msgs in prop::collection::vec((arb_node(), arb_message()), 1..16),
    ) {
        let mut per_frame: Vec<u8> = Vec::new();
        for (from, msg) in &msgs {
            write_frame(&mut per_frame, *from, msg).unwrap();
        }

        let mut batch = BytesMut::new();
        for (from, msg) in &msgs {
            encode_frame_into(*from, msg, &mut batch);
        }
        prop_assert_eq!(batch.as_ref(), per_frame.as_slice());

        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(per_frame);
        for (from, msg) in &msgs {
            let (f, m) = reader.read_from(&mut cursor).unwrap();
            prop_assert_eq!(f, *from);
            prop_assert_eq!(&m, msg);
        }
    }

    /// `send_batch` through a fault injector must see exactly the faults a
    /// per-message send loop sees: a sever firing mid-batch blackholes the
    /// tail of the batch identically on both paths, and the delivered
    /// prefix plus the injector's counters match message for message.
    #[test]
    fn batched_send_matches_sequential_send_across_sever(
        n in 1usize..12,
        sever_at in 0u64..12,
    ) {
        let plan = FaultPlan {
            rules: vec![FaultRule {
                pattern: MsgPattern {
                    progress: Some(sever_at),
                    ..MsgPattern::any()
                },
                action: FaultAction::Sever,
                count: 1,
            }],
        };
        let msgs: Vec<(NodeId, Message)> = (0..n as u64)
            .map(|progress| {
                (
                    NodeId::Server(0),
                    Message::SPull {
                        worker: 0,
                        progress,
                        keys: vec![progress],
                    },
                )
            })
            .collect();

        let drain = |batched: bool| -> (Vec<Message>, u64) {
            let fabric = Fabric::new();
            let server = fabric.register(NodeId::Server(0));
            let injector = FaultInjector::new(plan.clone());
            let worker = fabric.register(NodeId::Worker(0));
            let postman = injector.postman(NodeId::Worker(0), worker.postman());
            if batched {
                postman.send_batch(msgs.clone()).unwrap();
            } else {
                for (to, msg) in msgs.clone() {
                    postman.send(to, msg).unwrap();
                }
            }
            let mut got = Vec::new();
            while let Ok(Some((_, msg))) = server.try_recv() {
                got.push(msg);
            }
            (got, injector.stats().dropped + injector.stats().blackholed)
        };

        let (seq_msgs, seq_lost) = drain(false);
        let (batch_msgs, batch_lost) = drain(true);
        prop_assert_eq!(&batch_msgs, &seq_msgs);
        prop_assert_eq!(batch_lost, seq_lost);
        // The delivered prefix + the faulted remainder account for every
        // message handed to the postman.
        prop_assert_eq!(batch_msgs.len() as u64 + batch_lost, n as u64);
    }
}
