//! A counting global allocator: per-thread allocation accounting on top of
//! [`std::alloc::System`].
//!
//! The profiler (`fluentps-obs::prof`) attributes heap traffic to the
//! current thread's open span by sampling [`thread_counters`] when a span
//! opens and again when it closes; the deltas are the span's allocation
//! count and byte volume. That only works if the program's allocator
//! actually counts, so this crate installs [`CountingAlloc`] as the
//! workspace-wide `#[global_allocator]`.
//!
//! Cost: two thread-local `Cell` increments per allocation (no locks, no
//! atomics — the counters are per thread and only ever read from the same
//! thread). Deallocations are not counted: the profiler's question is
//! "where do bytes get allocated", not live-heap size. `realloc` counts as
//! one allocation of the new size (it is a fresh placement as far as the
//! hot path is concerned). Counters saturate rather than wrap, and the
//! increments use `try_with` so allocations during thread teardown (after
//! the thread-local is destroyed) are simply not counted instead of
//! panicking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// This thread's cumulative `(allocation count, allocated bytes)` since the
/// thread started. Monotone; sample twice and subtract to meter a region.
pub fn thread_counters() -> (u64, u64) {
    let allocs = ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

#[inline]
fn count(bytes: usize) {
    let _ = ALLOCS.try_with(|c| c.set(c.get().saturating_add(1)));
    let _ = BYTES.try_with(|c| c.set(c.get().saturating_add(bytes as u64)));
}

/// [`System`] plus per-thread allocation counters (see the module docs).
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System`; the added bookkeeping is
// alloc-free (const-initialized thread-local `Cell`s) and touches no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// The workspace-wide allocator. Living in `fluentps-util` (the root of
/// the dependency graph) makes every binary, test and bench in the
/// workspace count allocations without opting in.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_meter_allocations_on_this_thread() {
        let (a0, b0) = thread_counters();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (a1, b1) = thread_counters();
        assert!(a1 > a0, "allocation not counted: {a0} -> {a1}");
        assert!(b1 - b0 >= 4096, "bytes undercounted: {b0} -> {b1}");
        drop(v);
        // Deallocation does not move the counters.
        let (a2, b2) = thread_counters();
        assert_eq!((a1, b1), (a2, b2));
    }

    #[test]
    fn counters_are_per_thread() {
        let (a0, _) = thread_counters();
        std::thread::spawn(|| {
            let _v: Vec<u8> = Vec::with_capacity(1 << 16);
        })
        .join()
        .unwrap();
        // The spawned thread's traffic lands on its own counters. (The
        // spawn itself may allocate on this thread, so only assert the
        // other thread's big block is not attributed here byte-for-byte.)
        let (a1, b1) = thread_counters();
        assert!(a1 >= a0);
        let grown: Vec<u8> = Vec::with_capacity(64);
        drop(grown);
        let (_, b2) = thread_counters();
        assert!(b2 >= b1 + 64);
    }

    #[test]
    fn realloc_counts_the_new_size() {
        let mut v: Vec<u8> = Vec::with_capacity(8);
        let (_, b0) = thread_counters();
        v.reserve_exact(1 << 14); // realloc to at least 16 KiB
        let (_, b1) = thread_counters();
        assert!(b1 - b0 >= 1 << 14, "realloc bytes: {b0} -> {b1}");
    }
}
