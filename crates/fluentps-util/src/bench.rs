//! A tiny timing harness behind a criterion-shaped API.
//!
//! `[[bench]] harness = false` targets keep their structure — groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter` — but run on a
//! self-contained harness: calibrated warmup, `sample_size` timed samples,
//! and a `mean / p50 / p99` report per benchmark (plus throughput when a
//! group declares one). Run them with `cargo bench`.
//!
//! When the `FLUENTPS_BENCH_JSON` environment variable names a file, every
//! benchmark also appends one JSON object per line to it —
//! `{"name","mean_ns","p50_ns","p99_ns"[,"throughput_per_s","throughput_unit"]}`
//! — so scripts can collect machine-readable results (`scripts/bench.sh`
//! wraps them into a single JSON document).

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(100);

/// Top-level harness handle; one per bench binary, created by
/// [`criterion_group!`](crate::criterion_group!).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// Units for a group's throughput report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark name, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix, sample size and throughput.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.label(&id.to_string());
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing; exists for criterion compatibility).
    pub fn finish(self) {}

    fn label(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }
}

// bench_with_input returns &mut Self via bench_function; keep clippy quiet
// about the pass-through.

/// Times a closure: calibrated batches, `sample_size` samples.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, recording per-iteration times. The routine's return
    /// value is passed through [`black_box`] so the optimiser cannot delete
    /// the work.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup, and calibration of the batch size: run batches of
        // doubling size until one takes long enough to time reliably.
        let mut batch = 1u64;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || warmup_start.elapsed() >= WARMUP {
                if elapsed < TARGET_SAMPLE && batch < u64::MAX / 2 {
                    // Aim the batch at the target sample duration.
                    let per_iter = elapsed.as_nanos().max(1) as u64 / batch.max(1);
                    batch = (TARGET_SAMPLE.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 24);
                }
                break;
            }
            batch = batch.saturating_mul(2);
        }

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        let tp = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10}/s", human_bytes(n as f64 / (mean * 1e-9)))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3e} elem/s", n as f64 / (mean * 1e-9))
            }
            None => String::new(),
        };
        println!(
            "{label:<48} mean {:>10}  p50 {:>10}  p99 {:>10}{tp}",
            human_time(mean),
            human_time(p50),
            human_time(p99),
        );
        emit_json(label, mean, p50, p99, throughput);
    }
}

/// Append one benchmark result as a JSON line to `$FLUENTPS_BENCH_JSON`
/// (no-op when the variable is unset; IO errors are deliberately ignored —
/// a broken results file must not fail the benchmark run).
fn emit_json(label: &str, mean: f64, p50: f64, p99: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("FLUENTPS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => " ".chars().collect(),
            c => vec![c],
        })
        .collect();
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            ",\"throughput_per_s\":{:.1},\"throughput_unit\":\"bytes\"",
            n as f64 / (mean * 1e-9)
        ),
        Some(Throughput::Elements(n)) => format!(
            ",\"throughput_per_s\":{:.1},\"throughput_unit\":\"elements\"",
            n as f64 / (mean * 1e-9)
        ),
        None => String::new(),
    };
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{mean:.1},\"p50_ns\":{p50:.1},\"p99_ns\":{p99:.1}{tp}}}\n"
    );
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_bytes(bps: f64) -> String {
    if bps < 1024.0 {
        format!("{bps:.0} B")
    } else if bps < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Define a bench group function callable from
/// [`criterion_main!`](crate::criterion_main!).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            sample_size: 7,
            samples_ns: Vec::new(),
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.samples_ns.len(), 7);
        assert!(b.samples_ns.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn percentile_and_formatting() {
        let sorted: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 51.0); // exact median of 1..=101
        assert_eq!(percentile(&sorted, 99.0), 100.0);
        assert!(human_time(1.5e3).contains("µs"));
        assert!(human_time(2.5e7).contains("ms"));
        assert!(human_bytes(2.0 * 1024.0 * 1024.0).contains("MiB"));
    }
}
