//! Minimal byte-buffer types with a `bytes`-crate-shaped API.
//!
//! [`BytesMut`] is an append-only `Vec<u8>` with little-endian put methods;
//! [`Bytes`] is an immutable, cheaply cloneable (`Arc`-backed) view that
//! supports zero-copy slicing and cursor-style reads via [`Buf`]. This is
//! the whole surface the wire codec, framing layer and checkpoint format
//! need — nothing more.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cursor-style reads from an immutable byte buffer. Reading advances the
/// buffer; all getters panic if fewer than the required bytes remain (call
/// [`Buf::remaining`] first, as the codec does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Borrowed-slice cursor: lets decoders run over a reused read buffer
/// without first copying it into an owned [`Bytes`]. Advancing shrinks the
/// slice from the front.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append-style writes of little-endian integers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, reference-counted byte buffer. Clones and
/// [`slices`](Bytes::slice) share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation. Panics if the range is out
    /// of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The readable bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        v.to_vec().into()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

/// A growable byte buffer for building frames; [`freeze`](BytesMut::freeze)
/// converts it into an immutable [`Bytes`] without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writable capacity before the next append reallocates.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Ensure room for `additional` more bytes without reallocating later.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drop the written bytes but keep the allocation — the reuse primitive
    /// for per-connection scratch buffers: encode a batch, write it to the
    /// stream, `clear()`, repeat. Capacity converges on the largest batch
    /// seen and no further allocation happens on the hot path.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shorten to `len` written bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Take the written bytes out, leaving this buffer empty. The returned
    /// buffer owns the old allocation; `self` starts from scratch. Use
    /// [`BytesMut::clear`] instead when the *allocation* should stay with
    /// the writer.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Overwrite 4 already-written bytes at `at` with a little-endian
    /// `u32` — how the framer patches a length word after encoding the
    /// payload behind it, instead of building the frame in a second buffer.
    /// Panics if `at + 4` exceeds the written length.
    pub fn set_u32_le_at(&mut self, at: usize, v: u32) {
        self.data[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        self.data.into()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:02x?})", &self.data[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(&[1, 2, 3]);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEADBEEF);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.chunk(), &[1, 2, 3]);
        bytes.advance(3);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slices_share_storage_and_nest() {
        let bytes = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mid = bytes.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        let inner = mid.slice(4..8);
        assert_eq!(inner.as_slice(), &[12, 13, 14, 15]);
        // The parent is unaffected by child reads.
        let mut cursor = inner.clone();
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[14, 15]);
        assert_eq!(inner.as_slice(), &[12, 13, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let bytes = Bytes::from(vec![1, 2, 3]);
        let _ = bytes.slice(0..4);
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(&[0u8; 100]);
        let grown = b.capacity();
        assert!(grown >= 100);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), grown);
        // Refilling within capacity never reallocates.
        b.put_slice(&[1u8; 100]);
        assert_eq!(b.capacity(), grown);
    }

    #[test]
    fn split_takes_contents_and_allocation() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        let head = b.split();
        assert_eq!(head.as_ref(), &[1, 2, 3]);
        assert!(b.is_empty());
        b.put_u8(9);
        assert_eq!(b.as_ref(), &[9]);
    }

    #[test]
    fn set_u32_le_at_patches_in_place() {
        let mut b = BytesMut::new();
        b.put_u32_le(0); // placeholder
        b.put_slice(b"payload");
        b.set_u32_le_at(0, 7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.chunk(), b"payload");
    }

    #[test]
    fn slice_cursor_reads_like_bytes() {
        let data = {
            let mut b = BytesMut::new();
            b.put_u8(3);
            b.put_u32_le(77);
            b.put_u64_le(u64::MAX);
            b.freeze().to_vec()
        };
        let mut cur: &[u8] = &data;
        assert_eq!(cur.remaining(), 13);
        assert_eq!(cur.get_u8(), 3);
        assert_eq!(cur.get_u32_le(), 77);
        assert_eq!(cur.get_u64_le(), u64::MAX);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn equality_and_to_vec() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = Bytes::from(vec![0, 1, 2, 3, 4]).slice(1..5);
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(Bytes::new().len(), 0);
    }
}
