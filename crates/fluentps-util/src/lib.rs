//! Std-only utility layer for the FluentPS workspace.
//!
//! The build environment is hermetic: no network, no cargo registry. Every
//! capability the workspace previously pulled from external crates lives
//! here instead, implemented on `std` alone:
//!
//! * [`alloc`] — a counting `#[global_allocator]` wrapper over the system
//!   allocator with per-thread allocation/byte counters, installed
//!   workspace-wide so the profiler can attribute heap traffic to spans.
//! * [`rng`] — a seedable SplitMix64-seeded PCG32 PRNG (`StdRng`) with
//!   uniform ranges, Bernoulli draws, Fisher–Yates shuffle, Box–Muller
//!   normal and inverse-CDF exponential sampling. Replaces `rand`.
//! * [`sync`] — poison-ignoring `Mutex`/`RwLock` wrappers with a
//!   parking_lot-style API, mpsc channels with `recv_timeout`/`try_recv`,
//!   and `std::thread::scope`-based scoped spawns. Replaces `crossbeam`
//!   and `parking_lot`.
//! * [`buf`] — a minimal `Bytes`/`BytesMut`/`Buf`/`BufMut` subset over
//!   `Vec<u8>` with cheap, `Arc`-backed `Bytes` clones. Replaces `bytes`.
//! * [`proptest`] — a fixed-seed property-test harness: a [`proptest!`]
//!   macro over composable [`proptest::Strategy`] generators with failure
//!   reporting and greedy shrinking. Replaces `proptest`.
//! * [`bench`] — a tiny timing harness (warmup + N samples + mean/p50/p99
//!   report) behind a criterion-shaped API so `[[bench]] harness = false`
//!   targets keep their structure. Replaces `criterion`.
//!
//! Determinism is a design requirement, not a convenience: PSSP's
//! probabilistic pull condition and the straggler models are simulated, and
//! reproducing the paper's figures requires that the same experiment seed
//! produce the same coin flips on every run. All randomness in the
//! workspace flows from experiment-config seeds through [`rng::StdRng`].

pub mod alloc;
pub mod bench;
pub mod buf;
pub mod proptest;
pub mod rng;
pub mod sync;
