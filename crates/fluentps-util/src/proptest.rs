//! A small, fully deterministic property-testing harness.
//!
//! The [`proptest!`](crate::proptest!) macro runs each property over a loop
//! of generated cases. Inputs come from composable [`Strategy`] values —
//! numeric ranges, [`any`], [`Just`], tuples, [`collection::vec`],
//! [`Strategy::prop_map`] and [`prop_oneof!`](crate::prop_oneof!) — and a
//! failing case is greedily shrunk before being reported, so the panic
//! message shows a (locally) minimal counterexample.
//!
//! Unlike the external `proptest` crate this harness is *fixed-seed*: the
//! case stream for a property is a pure function of the property's name, so
//! every run — local or CI — tests the same inputs. Set `PROPTEST_CASES` to
//! change the number of cases (default 256).

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::StdRng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated; the message describes how.
    Fail(String),
    /// The case did not satisfy a [`prop_assume!`](crate::prop_assume!)
    /// precondition and should be regenerated, not counted.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of test-case values with optional shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The runner
    /// keeps any candidate that still fails the property.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`. (Mapped values do not shrink:
    /// the transform is not invertible.)
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<T: Clone + Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof!).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Clone + Debug> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Box a strategy for storage in a [`Union`]. (A plain function rather than
/// an inline cast so `prop_oneof!` arms get their value types unified by
/// inference.)
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Clone + Debug + 'static {
    fn arbitrary(rng: &mut StdRng) -> Self;
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// The whole-domain strategy for `T` (uniform over all bit patterns for
/// integers and floats — including NaN and infinities for floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
            fn shrink(value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value != 0 {
                    out.push(0);
                    let half = value / 2;
                    if half != *value {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
    fn shrink(value: &f32) -> Vec<f32> {
        if *value == 0.0 || value.is_nan() {
            Vec::new()
        } else {
            vec![0.0, value / 2.0]
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
    fn shrink(value: &f64) -> Vec<f64> {
        if *value == 0.0 || value.is_nan() {
            Vec::new()
        } else {
            vec![0.0, value / 2.0]
        }
    }
}

// Numeric ranges are strategies: uniform over the range, shrinking toward
// the lower bound.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Inclusive ranges only exist as samplers for integers.
macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink candidates for a numeric value, simplest first: the lower bound,
/// then a bisection ladder of midpoints climbing from the bound back toward
/// the value. The greedy runner keeps the first candidate that still fails,
/// so successive rounds binary-search onto the exact failure boundary.
fn shrink_toward<T: Midpoint + PartialEq + Copy>(low: T, value: T) -> Vec<T> {
    let mut out = Vec::new();
    if value == low {
        return out;
    }
    out.push(low);
    let mut cur = low;
    // Cap the ladder: floats can take ~60 halvings to converge.
    for _ in 0..64 {
        let mid = T::midpoint(cur, value);
        if mid == cur || mid == value {
            break;
        }
        out.push(mid);
        cur = mid;
    }
    out
}

/// Halfway point between two values, rounding toward `a`.
pub trait Midpoint {
    fn midpoint(a: Self, b: Self) -> Self;
}

macro_rules! impl_midpoint_int {
    ($($t:ty),*) => {$(
        impl Midpoint for $t {
            fn midpoint(a: $t, b: $t) -> $t {
                a + (b - a) / 2
            }
        }
    )*};
}
impl_midpoint_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Midpoint for f32 {
    fn midpoint(a: f32, b: f32) -> f32 {
        a + (b - a) / 2.0
    }
}
impl Midpoint for f64 {
    fn midpoint(a: f64, b: f64) -> f64 {
        a + (b - a) / 2.0
    }
}

// Tuples of strategies are strategies over tuples; each component shrinks
// independently with the others held fixed.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$v:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/a/0)
    (A/a/0, B/b/1)
    (A/a/0, B/b/1, C/c/2)
    (A/a/0, B/b/1, C/c/2, D/d/3)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5, G/g/6, H/h/7)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max_excl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// `Vec<E>` strategy with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.min..self.len.max_excl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let n = value.len();
            // Structural shrinks first: shorter vectors fail simpler.
            if n > self.len.min {
                let half = (n / 2).max(self.len.min);
                if half < n {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..n - 1].to_vec());
                out.push(value[1..].to_vec());
            }
            // Then element-wise shrinks on a few positions.
            for i in 0..n.min(4) {
                for cand in self.element.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Everything a property-test file needs, in one glob import.
pub mod prelude {
    pub use super::{any, boxed_strategy, Arbitrary, Just, Strategy, TestCaseError, Union};
    pub use crate::proptest as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Install (once) a panic hook that stays silent while the runner probes
/// cases, so shrinking does not spray panic backtraces; panics outside the
/// runner go through the previous hook untouched.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_one<V, F>(f: &F, value: &V) -> Outcome
where
    F: Fn(&V) -> Result<(), TestCaseError>,
{
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Reject)) => Outcome::Reject,
        Ok(Err(TestCaseError::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".to_string());
            Outcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 256).
fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// FNV-1a, used to derive a per-property seed from its name so every
/// property gets a distinct but fixed case stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Drive one property: generate cases, stop on the first failure, shrink
/// it, and panic with the minimal counterexample. Called by the
/// [`proptest!`](crate::proptest!) macro, not directly.
pub fn run<S, F>(name: &str, strategy: S, f: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    install_quiet_hook();
    let cases = num_cases();
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    let mut passed = 0usize;
    let mut attempts = 0usize;
    while passed < cases {
        attempts += 1;
        assert!(
            attempts <= cases.saturating_mul(20),
            "{name}: gave up after {attempts} attempts \
             ({passed}/{cases} cases passed, rest rejected by prop_assume!)"
        );
        let value = strategy.generate(&mut rng);
        match run_one(&f, &value) {
            Outcome::Pass => passed += 1,
            Outcome::Reject => {}
            Outcome::Fail(msg) => {
                let (minimal, min_msg, steps) = shrink_failure(&strategy, &f, value, msg);
                panic!(
                    "property `{name}` failed after {passed} passing case(s), \
                     {steps} shrink step(s)\n  counterexample: {minimal:?}\n  error: {min_msg}"
                );
            }
        }
    }
}

fn shrink_failure<S, F>(
    strategy: &S,
    f: &F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0usize;
    'outer: while steps < 500 {
        for cand in strategy.shrink(&value) {
            if let Outcome::Fail(m) = run_one(f, &cand) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Define property tests. Mirrors the `proptest!` surface the repo's suites
/// use: each function's arguments are `name in strategy` bindings; bodies
/// may use `prop_assert!`, `prop_assert_eq!` and `prop_assume!`, and plain
/// panics/`assert!`s are caught and shrunk too.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __strategy = ($($strat,)+);
            $crate::proptest::run(stringify!($name), __strategy, |__case| {
                let ($($arg,)+) = __case.clone();
                $body
                Ok(())
            });
        }
    )*};
}

/// Assert a condition inside a [`proptest!`](crate::proptest!) body,
/// reporting the generated case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`](crate::proptest!) body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::proptest::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::proptest::TestCaseError::fail(format!(
                "{}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::proptest::Union::new(vec![
            $($crate::proptest::boxed_strategy($arm)),+
        ])
    };
}

/// Discard the current case (uncounted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Addition of values drawn from ranges stays within the sum of the
        /// bounds — exercises ranges, tuples and the runner end to end.
        #[test]
        fn range_sums_bounded(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(a + b < 199, "sum {}", a + b);
        }

        /// Vec strategy honours its length bounds.
        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
        }

        /// prop_map and prop_oneof! compose.
        #[test]
        fn mapped_union_values(x in prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            Just(99u64),
        ]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20), "x = {x}");
        }

        /// prop_assume! discards without failing.
        #[test]
        fn assume_filters_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            super::run("shrink_demo", (0u64..1000,), |&(x,)| {
                if x >= 500 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic carries a String");
        assert!(
            msg.contains("counterexample: (500,)"),
            "did not shrink to the boundary: {msg}"
        );
    }

    #[test]
    fn panicking_bodies_are_caught_and_reported() {
        let result = std::panic::catch_unwind(|| {
            super::run("panic_demo", (0u32..10,), |&(x,)| {
                assert!(x < 100, "impossible");
                if x > 3 {
                    panic!("boom at {x}");
                }
                Ok(())
            });
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("boom at 4"), "wrong shrink target: {msg}");
    }

    #[test]
    fn same_name_same_cases() {
        fn collect(name: &str) -> Vec<u64> {
            let mut seen = Vec::new();
            let mut rng = crate::rng::StdRng::seed_from_u64(super::fnv1a(name.as_bytes()));
            for _ in 0..32 {
                seen.push((0u64..1_000_000).generate(&mut rng));
            }
            seen
        }
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }
}
