//! Seedable pseudo-random number generation.
//!
//! [`StdRng`] is a PCG32 generator (64-bit state, XSH-RR output) whose state
//! and stream constants are derived from a `u64` seed via SplitMix64, so any
//! seed — including 0 — yields a well-mixed stream. The API mirrors the
//! subset of `rand` the workspace uses (`seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`, `shuffle`) plus the distribution samplers the simulators need
//! (Box–Muller normal, inverse-CDF exponential).
//!
//! Determinism contract: the sequence produced by a given seed is part of
//! the repo's reproducibility guarantee. Changing the generator or the
//! derivation below changes every simulated experiment's coin flips.

const PCG_MULT: u64 = 6364136223846793005;

/// Advance a SplitMix64 state and return the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The workspace's standard PRNG: PCG32 seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
    inc: u64,
}

impl StdRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let init_state = splitmix64(&mut sm);
        let init_inc = splitmix64(&mut sm) | 1; // stream constant must be odd
        let mut rng = StdRng {
            state: 0,
            inc: init_inc,
        };
        // Standard PCG initialisation: absorb the seed into the state.
        rng.next_u32();
        rng.state = rng.state.wrapping_add(init_state);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits (PCG-XSH-RR).
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A value of type `T` from its natural "whole domain" distribution:
    /// `f32`/`f64` uniform in `[0, 1)`, integers uniform over all bits,
    /// `bool` a fair coin.
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform draw from a range (half-open or inclusive). Panics on an
    /// empty range, like `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Standard-normal sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // u1 in (0, 1]: avoids ln(0).
        let u1 = 1.0 - self.gen::<f64>();
        let u2 = self.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential sample with rate `lambda` via inverse CDF. Panics if
    /// `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.gen::<f64>(); // (0, 1]
        -u.ln() / lambda
    }

    /// Uniform in `[0, n)` without modulo bias (rejection sampling).
    fn uniform_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        if n == 1 {
            return 0;
        }
        // Largest value below which x % n is unbiased.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Random {
    fn random(rng: &mut StdRng) -> Self;
}

impl Random for f64 {
    fn random(rng: &mut StdRng) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random(rng: &mut StdRng) -> f32 {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random(rng: &mut StdRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Random for $t {
            fn random(rng: &mut StdRng) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
impl_random_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                 u64 => next_u64, usize => next_u64,
                 i8 => next_u32, i16 => next_u32, i32 => next_u32,
                 i64 => next_u64, isize => next_u64);

/// Ranges [`StdRng::gen_range`] can sample from. The output type is a
/// trait parameter (mirroring `rand`) so an unannotated literal range like
/// `-1.0..1.0` unifies with the surrounding `f32`/`f64` context.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.uniform_u64(width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-domain u64/i64 range
                }
                start.wrapping_add(rng.uniform_u64(width as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit: $t = rng.gen();
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams nearly identical: {same}/64 collisions");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(5u32..17);
            assert!((5..17).contains(&a));
            let b = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&b));
            let c = rng.gen_range(0usize..3);
            assert!(c < 3);
            let d = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&d));
            let e = rng.gen_range(-8i64..-3);
            assert!((-8..-3).contains(&e));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let all_positive = (0..1000).all(|_| rng.exponential(0.1) >= 0.0);
        assert!(all_positive);
    }
}
