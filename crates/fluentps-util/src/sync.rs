//! Synchronization primitives with a parking_lot/crossbeam-shaped API.
//!
//! * [`Mutex`]/[`RwLock`]: thin wrappers over `std::sync` that ignore
//!   poisoning — `lock()`/`read()`/`write()` return guards directly, the way
//!   parking_lot does. A panicked critical section in one thread must not
//!   wedge the whole cluster simulation; the state types these protect
//!   (inbox registries, connection maps) stay consistent under panic.
//! * [`unbounded`] channels: `std::sync::mpsc` re-shaped to crossbeam's
//!   calling convention (`Sender`/`Receiver` with `try_recv`/`recv_timeout`
//!   and shareable, `Sync` receivers).
//! * [`scope`]: `std::thread::scope`, re-exported as the workspace's scoped
//!   spawn primitive (replaces `crossbeam::thread::scope`).

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
pub use std::thread::scope;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex wrapping `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock wrapping `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A one-way latch for background-loop shutdown: worker threads park on
/// [`StopFlag::wait_timeout`] for their poll cadence and wake *immediately*
/// when another thread calls [`StopFlag::stop`], instead of sleeping out the
/// rest of the interval. Replaces `AtomicBool` + `thread::sleep` polling,
/// whose shutdown latency is a full poll period per loop.
#[derive(Debug, Default)]
pub struct StopFlag {
    stopped: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl StopFlag {
    /// A flag in the running state.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Latch to stopped and wake every waiter. Idempotent.
    pub fn stop(&self) {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Whether [`StopFlag::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park for up to `timeout`, returning early — with `true` — as soon as
    /// the flag stops. Returns the stopped state either way.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        if *guard {
            return true;
        }
        let (guard, _timed_out) = self
            .cv
            .wait_timeout_while(guard, timeout, |stopped| !*stopped)
            .unwrap_or_else(|e| e.into_inner());
        *guard
    }
}

/// Create an unbounded mpsc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender(tx),
        Receiver {
            inner: Mutex::new(rx),
        },
    )
}

/// Cloneable sending half of an [`unbounded`] channel.
#[derive(Debug)]
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Send a value; fails only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// Receiving half of an [`unbounded`] channel. Unlike `std`'s receiver this
/// is `Sync` (receives serialize through an internal mutex), matching the
/// crossbeam receivers it replaces.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: Mutex<mpsc::Receiver<T>>,
}

impl<T> Receiver<T> {
    /// Block until a value arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.lock().recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.lock().try_recv()
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.lock().recv_timeout(timeout)
    }

    /// Drain and return everything currently queued.
    pub fn drain(&self) -> Vec<T> {
        let guard = self.inner.lock();
        let mut out = Vec::new();
        while let Ok(v) = guard.try_recv() {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_ignores_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_ignores_poison() {
        let l = Arc::new(RwLock::new(5u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn channel_send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn try_recv_and_timeout_semantics() {
        let (tx, rx) = unbounded::<u32>();
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn cloned_senders_share_one_receiver() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = rx.drain();
        got.sort();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_is_sync_and_shareable() {
        let (tx, rx) = unbounded::<u64>();
        let rx = Arc::new(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.try_recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: u32 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn stop_flag_wakes_parked_waiter_early() {
        let flag = Arc::new(StopFlag::new());
        assert!(!flag.is_stopped());
        assert!(!flag.wait_timeout(Duration::from_millis(1)));
        let waiter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                assert!(flag.wait_timeout(Duration::from_secs(30)));
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        flag.stop();
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "woke early, not at timeout"
        );
        assert!(flag.is_stopped());
        // Stopped flag returns immediately.
        assert!(flag.wait_timeout(Duration::from_secs(30)));
    }

    #[test]
    fn scoped_threads_borrow_locals() {
        let data = vec![1, 2, 3, 4];
        let sums: Vec<i32> = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move || c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sums, vec![3, 7]);
    }
}
