//! Dynamic PSSP and the significance machinery.
//!
//! Part 1 prints the blocking-probability surface P(s, k) for constant vs
//! dynamic PSSP and the regret-equivalence table of Theorem 1.
//! Part 2 runs static PSSP, dynamic PSSP (significance-driven α) and the
//! Gaia-style significance filter side by side on one training workload.
//!
//! Run with: `cargo run --release --example dynamic_pssp`

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::pssp::{constant_probability, dynamic_probability, Alpha};
use fluentps::core::regret::{equivalent_ssp_threshold, pssp_const_bound, ssp_bound, RegretParams};
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::report::{pct, secs, Table};
use fluentps::ml::data::SyntheticSpec;
use fluentps::ml::schedule::LrSchedule;
use fluentps::simnet::compute::StragglerSpec;
use fluentps::simnet::net::LinkModel;

fn main() {
    // --- Part 1: the probability surface and Theorem 1 ---
    let s = 3u64;
    let mut surface = Table::new(
        "P(s=3, k): probability of pausing a worker with progress gap k",
        &["gap k", "constant c=0.5", "dynamic α=1.0"],
    );
    for k in 0..10u64 {
        surface.row(vec![
            k.to_string(),
            format!("{:.3}", constant_probability(0.5, s, k)),
            format!("{:.3}", dynamic_probability(1.0, s, k)),
        ]);
    }
    println!("{}", surface.render());

    let params = RegretParams {
        f: 1.0,
        l: 1.0,
        n: 32,
        t: 64_000,
    };
    let mut regret = Table::new(
        "Theorem 1: PSSP(s=3, c) and SSP(s' = s + 1/c - 1) share the regret bound",
        &["c", "s'", "PSSP bound", "SSP bound"],
    );
    for c in [0.5f64, 1.0 / 3.0, 0.2, 0.1] {
        regret.row(vec![
            format!("{c:.3}"),
            format!("{:.0}", equivalent_ssp_threshold(s, c)),
            format!("{:.5}", pssp_const_bound(params, s as f64, c)),
            format!("{:.5}", ssp_bound(params, equivalent_ssp_threshold(s, c))),
        ]);
    }
    println!("{}", regret.render());

    // --- Part 2: static vs dynamic PSSP vs significance filter ---
    let mk = |engine: EngineKind, filter: Option<(f64, u32)>| {
        let cfg = DriverConfig {
            engine,
            num_workers: 12,
            num_servers: 2,
            max_iters: 300,
            model: ModelKind::Mlp { hidden: vec![48] },
            dataset: Some(SyntheticSpec {
                dim: 32,
                classes: 10,
                n_train: 4000,
                n_test: 1000,
                margin: 2.8,
                modes: 1,
                label_noise: 0.0,
                seed: 13,
            }),
            batch_size: 16,
            lr: LrSchedule::Constant(0.2),
            compute_base: 3.0,
            compute_jitter: 0.3,
            stragglers: StragglerSpec {
                transient_prob: 0.05,
                transient_factor: 2.0,
                persistent_count: 1,
                persistent_factor: 1.7,
            },
            link: LinkModel::aws_25g(),
            significance_filter: filter,
            eval_every: 0,
            seed: 13,
            ..DriverConfig::default()
        };
        run(&cfg)
    };

    let mut table = Table::new(
        "Static vs dynamic PSSP vs significance filter (12 workers, 1 straggler)",
        &[
            "configuration",
            "time",
            "accuracy",
            "DPRs/100it",
            "bytes-in",
        ],
    );
    type Config = (&'static str, EngineKind, Option<(f64, u32)>);
    let configs: Vec<Config> = vec![
        (
            "PSSP const c=0.3",
            EngineKind::FluentPs {
                model: SyncModel::PsspConst { s: 3, c: 0.3 },
                policy: DprPolicy::LazyExecution,
            },
            None,
        ),
        (
            "PSSP dynamic (significance α)",
            EngineKind::FluentPs {
                model: SyncModel::PsspDynamic {
                    s: 3,
                    alpha: Alpha::Significance {
                        floor: 0.05,
                        cap: 1.0,
                    },
                },
                policy: DprPolicy::LazyExecution,
            },
            None,
        ),
        (
            "PSSP const + significance filter",
            EngineKind::FluentPs {
                model: SyncModel::PsspConst { s: 3, c: 0.3 },
                policy: DprPolicy::LazyExecution,
            },
            Some((0.05, 8)),
        ),
    ];
    for (name, engine, filter) in configs {
        let r = mk(engine, filter);
        table.row(vec![
            name.to_string(),
            secs(r.total_time),
            pct(r.final_accuracy),
            format!("{:.1}", r.dprs_per_100),
            r.stats.bytes_in.to_string(),
        ]);
    }
    println!("{}", table.render());
}
