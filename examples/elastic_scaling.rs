//! Elastic scale-down, end to end: train on 4 servers, lose one, rebalance
//! the placement with EPS, warm-start the surviving 3 servers from the
//! previous parameters, and keep training. Accuracy keeps improving through
//! the transition — the "Elastic" in Elastic Parameter Slicing.
//!
//! Run with: `cargo run --release --example elastic_scaling`

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::report::pct;
use fluentps::ml::data::SyntheticSpec;
use fluentps::ml::schedule::LrSchedule;

fn phase(
    servers: u32,
    iters: u64,
    warm: Option<fluentps::ml::ParamMap>,
) -> fluentps::experiments::driver::RunResult {
    let cfg = DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
        },
        num_workers: 8,
        num_servers: servers,
        max_iters: iters,
        model: ModelKind::Mlp { hidden: vec![48] },
        dataset: Some(SyntheticSpec {
            dim: 32,
            classes: 10,
            n_train: 5000,
            n_test: 1000,
            margin: 2.2,
            modes: 2,
            label_noise: 0.0,
            seed: 23,
        }),
        batch_size: 16,
        lr: LrSchedule::Constant(0.12),
        compute_base: 2.0,
        initial_params: warm,
        eval_every: 0,
        seed: 23,
        ..DriverConfig::default()
    };
    run(&cfg)
}

fn main() {
    // Phase 1: a healthy 4-server cluster.
    let phase1 = phase(4, 60, None);
    println!(
        "phase 1 (4 servers, 60 iters): accuracy {}",
        pct(phase1.final_accuracy)
    );

    // Server 3 dies. EPS recomputes the placement for 3 servers inside the
    // driver; the parameters themselves are carried over (in a live cluster
    // this is the checkpoint-restore path shown in tests/end_to_end.rs).
    let carried = phase1.final_params.clone().expect("training run");
    let phase2 = phase(3, 60, Some(carried));
    println!(
        "phase 2 (3 servers, 60 more iters, warm-started): accuracy {}",
        pct(phase2.final_accuracy)
    );

    // A cold 3-server run of the same total budget, for contrast.
    let cold = phase(3, 60, None);
    println!(
        "cold 3-server run (60 iters from scratch):        accuracy {}",
        pct(cold.final_accuracy)
    );

    assert!(
        phase2.final_accuracy >= phase1.final_accuracy - 0.02,
        "warm-started continuation must not lose the learned model: {} vs {}",
        phase2.final_accuracy,
        phase1.final_accuracy
    );
    assert!(
        phase2.final_accuracy > cold.final_accuracy + 0.02,
        "continuation ({}) should beat training from scratch ({})",
        phase2.final_accuracy,
        cold.final_accuracy
    );
    println!("elastic_scaling: OK — training survived the scale-down");
}
