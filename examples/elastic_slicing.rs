//! Elastic Parameter Slicing in action.
//!
//! Shows the byte imbalance of PS-Lite's default contiguous slicing on a
//! skewed model, the balance EPS achieves, and an elastic rebalance after a
//! server failure — including how little data moves.
//!
//! Run with: `cargo run --release --example elastic_slicing`

use fluentps::core::eps::{DefaultSlicer, EpsSlicer, ParamSpec, Slicer};
use fluentps::core::scheduler::Scheduler;
use fluentps::transport::NodeId;

fn main() {
    // A ResNet-56-shaped inventory: one dominant tensor plus many small ones.
    let mut params = vec![ParamSpec {
        key: 0,
        len: 300_000,
    }];
    for k in 1..56 {
        params.push(ParamSpec {
            key: k,
            len: 10_000,
        });
    }
    let servers = 8;

    let default_map = DefaultSlicer.slice(&params, servers);
    let eps = EpsSlicer { max_chunk: 16_384 };
    let eps_map = eps.slice(&params, servers);

    println!(
        "model: {} tensors, {} values total\n",
        params.len(),
        default_map.total_values()
    );
    println!("default slicing loads: {:?}", default_map.server_loads());
    println!(
        "default imbalance: {:.2} (max/mean)",
        default_map.imbalance()
    );
    println!("EPS loads:            {:?}", eps_map.server_loads());
    println!("EPS imbalance:        {:.2}\n", eps_map.imbalance());

    // Elastic rebalance through the scheduler: server 7 dies.
    let mut sched = Scheduler::new(params, servers, eps, 10);
    for s in 0..servers {
        sched.observe(NodeId::Server(s), 0);
    }
    for s in 0..servers - 1 {
        sched.observe(NodeId::Server(s), 100);
    }
    let (dead, moved) = sched.check_and_rebalance(100);
    println!("server failure detected: {dead:?}");
    println!(
        "rebalanced onto {} servers, moved {moved} values ({:.1}% of the model)",
        sched.placement().num_servers(),
        100.0 * moved as f64 / sched.placement().total_values() as f64
    );
    println!(
        "post-rebalance loads: {:?}",
        sched.placement().server_loads()
    );
    println!(
        "post-rebalance imbalance: {:.2}",
        sched.placement().imbalance()
    );

    assert!(default_map.imbalance() > 3.0);
    assert!(eps_map.imbalance() < 1.2);
    assert!(sched.placement().imbalance() < 1.35);
}
