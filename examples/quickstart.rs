//! Quickstart: a live FluentPS cluster in one process.
//!
//! Launches 2 parameter-server threads and 4 worker threads, trains a
//! softmax-regression model on a synthetic 10-class dataset under SSP with
//! lazy pull execution, and prints the test accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::engine::{Cluster, EngineConfig};
use fluentps::core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps::core::server::GradScale;
use fluentps::ml::data::{synthetic, BatchSampler, SyntheticSpec};
use fluentps::ml::models::{Model, SoftmaxRegression};
use fluentps::ml::optim::{Optimizer, Sgd};

fn main() {
    const NUM_WORKERS: u32 = 4;
    const NUM_SERVERS: u32 = 2;
    const ITERATIONS: u64 = 400;

    // Dataset + model.
    let spec = SyntheticSpec {
        dim: 32,
        classes: 10,
        n_train: 4000,
        n_test: 1000,
        margin: 3.0,
        modes: 1,
        label_noise: 0.0,
        seed: 7,
    };
    let (train, test) = synthetic(spec);
    let model = SoftmaxRegression {
        dim: spec.dim,
        classes: spec.classes,
    };
    let init = model.init_params(7);

    // Place the parameters on the servers with Elastic Parameter Slicing.
    let param_specs: Vec<ParamSpec> = model
        .param_shapes()
        .iter()
        .map(|s| ParamSpec {
            key: s.key,
            len: s.len,
        })
        .collect();
    let map = EpsSlicer { max_chunk: 128 }.slice(&param_specs, NUM_SERVERS);
    println!(
        "placed {} values on {} servers (imbalance {:.3})",
        map.total_values(),
        NUM_SERVERS,
        map.imbalance()
    );

    // Launch the cluster: SSP with staleness 2, lazy pull execution.
    let cfg = EngineConfig {
        num_workers: NUM_WORKERS,
        num_servers: NUM_SERVERS,
        model: SyncModel::Ssp { s: 2 },
        policy: DprPolicy::LazyExecution,
        grad_scale: GradScale::DivideByN,
        seed: 7,
    };
    let (cluster, workers) = Cluster::launch(cfg, map, &init);

    // Each worker trains on its own partition (Algorithm 1, worker side).
    let handles: Vec<_> = workers
        .into_iter()
        .map(|mut client| {
            let train = train.clone();
            let init = init.clone();
            std::thread::spawn(move || {
                let n = client.worker_id();
                let mut params = init;
                let mut opt = Sgd::new(0.3, 0.9, 0.0);
                let mut sampler =
                    BatchSampler::new(train.partition(n, NUM_WORKERS), 32, 1000 + n as u64);
                for i in 0..ITERATIONS {
                    let batch = train.batch(&sampler.next_indices());
                    let (_, grads) = model.loss_and_grad(&params, &batch);
                    let deltas = opt.deltas(&params, &grads);
                    client.spush(i, &deltas).expect("push");
                    client.spull_wait(i, &mut params).expect("pull");
                }
                params
            })
        })
        .collect();

    let final_params = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .next_back()
        .expect("at least one worker");

    let stats = cluster.shutdown();
    let accuracy = model.accuracy(&final_params, &test);
    println!(
        "test accuracy after {ITERATIONS} iterations x {NUM_WORKERS} workers: {:.1}%",
        accuracy * 100.0
    );
    for (m, s) in stats.iter().enumerate() {
        println!(
            "server {m}: {} pushes, {} pulls ({} deferred, {} released lazily)",
            s.pushes, s.pulls_total, s.dprs, s.dprs_released
        );
    }
    assert!(accuracy > 0.8, "quickstart should learn");
}
