//! Straggler study: how each synchronization model copes with an
//! increasingly hostile cluster.
//!
//! Sweeps the persistent-straggler slowdown factor and reports
//! time-to-finish and accuracy for BSP, SSP, drop-stragglers and PSSP —
//! the trade-off space Section II-B motivates.
//!
//! Run with: `cargo run --release --example straggler_study`

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::report::{pct, secs, Table};
use fluentps::ml::data::SyntheticSpec;
use fluentps::ml::schedule::LrSchedule;
use fluentps::simnet::compute::StragglerSpec;

fn main() {
    let mut table = Table::new(
        "Straggler study: 8 workers, 1 persistent straggler of varying slowness",
        &[
            "straggler-factor",
            "model",
            "time",
            "accuracy",
            "dropped-pushes",
        ],
    );
    for factor in [1.0f64, 2.0, 4.0] {
        for (name, model) in [
            ("BSP", SyncModel::Bsp),
            ("SSP s=3", SyncModel::Ssp { s: 3 }),
            (
                "Drop stragglers (Nt=7)",
                SyncModel::DropStragglers { n_t: 7 },
            ),
            ("PSSP c=0.3", SyncModel::PsspConst { s: 3, c: 0.3 }),
        ] {
            let cfg = DriverConfig {
                engine: EngineKind::FluentPs {
                    model,
                    policy: DprPolicy::LazyExecution,
                },
                num_workers: 8,
                num_servers: 2,
                max_iters: 250,
                model: ModelKind::Softmax,
                dataset: Some(SyntheticSpec {
                    dim: 32,
                    classes: 10,
                    n_train: 4000,
                    n_test: 1000,
                    margin: 3.0,
                    modes: 1,
                    label_noise: 0.0,
                    seed: 5,
                }),
                batch_size: 16,
                lr: LrSchedule::Constant(0.25),
                compute_base: 2.0,
                compute_jitter: 0.2,
                stragglers: StragglerSpec {
                    transient_prob: 0.02,
                    transient_factor: 2.0,
                    persistent_count: 1,
                    persistent_factor: factor,
                },
                eval_every: 0,
                seed: 5,
                ..DriverConfig::default()
            };
            let r = run(&cfg);
            table.row(vec![
                format!("{factor}x"),
                name.to_string(),
                secs(r.total_time),
                pct(r.final_accuracy),
                r.stats.late_pushes_dropped.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Expected shape: BSP time explodes with the straggler factor; drop-stragglers");
    println!("and PSSP hold their speed, trading a little accuracy for it.");
}
