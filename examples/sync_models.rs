//! Compare all built-in synchronization models on one workload.
//!
//! Uses the discrete-event simulation driver so timing reflects a cluster
//! with a persistent straggler, and training accuracy reflects the actual
//! staleness each model allowed.
//!
//! Run with: `cargo run --release --example sync_models`

use fluentps::core::condition::{DspsConfig, SyncModel};
use fluentps::core::dpr::DprPolicy;
use fluentps::core::pssp::Alpha;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::report::{pct, secs, Table};
use fluentps::ml::data::SyntheticSpec;
use fluentps::ml::schedule::LrSchedule;
use fluentps::simnet::compute::StragglerSpec;

fn main() {
    let models: Vec<(&str, SyncModel)> = vec![
        ("BSP", SyncModel::Bsp),
        ("ASP", SyncModel::Asp),
        ("SSP s=3", SyncModel::Ssp { s: 3 }),
        ("DSPS", SyncModel::Dsps(DspsConfig::default())),
        (
            "Drop stragglers (Nt=6)",
            SyncModel::DropStragglers { n_t: 6 },
        ),
        ("PSSP const c=0.3", SyncModel::PsspConst { s: 3, c: 0.3 }),
        (
            "PSSP dynamic",
            SyncModel::PsspDynamic {
                s: 3,
                alpha: Alpha::Significance {
                    floor: 0.05,
                    cap: 1.0,
                },
            },
        ),
    ];

    let mut table = Table::new(
        "Synchronization model comparison (8 workers, 1 persistent straggler)",
        &["model", "time", "accuracy", "DPRs/100it", "dropped-pushes"],
    );
    for (name, model) in models {
        let cfg = DriverConfig {
            engine: EngineKind::FluentPs {
                model,
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 8,
            num_servers: 2,
            max_iters: 300,
            model: ModelKind::Mlp { hidden: vec![48] },
            dataset: Some(SyntheticSpec {
                dim: 32,
                classes: 10,
                n_train: 4000,
                n_test: 1000,
                margin: 2.6,
                modes: 1,
                label_noise: 0.0,
                seed: 3,
            }),
            batch_size: 16,
            lr: LrSchedule::Constant(0.2),
            compute_base: 2.0,
            compute_jitter: 0.3,
            stragglers: StragglerSpec {
                transient_prob: 0.05,
                transient_factor: 2.0,
                persistent_count: 1,
                persistent_factor: 1.8,
            },
            eval_every: 0,
            seed: 3,
            ..DriverConfig::default()
        };
        let r = run(&cfg);
        table.row(vec![
            name.to_string(),
            secs(r.total_time),
            pct(r.final_accuracy),
            format!("{:.1}", r.dprs_per_100),
            r.stats.late_pushes_dropped.to_string(),
        ]);
    }
    println!("{}", table.render());
}
