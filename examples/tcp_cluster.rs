//! A FluentPS cluster over real TCP sockets on localhost.
//!
//! Demonstrates that the per-shard synchronization state machine is
//! transport-agnostic: this example drives the same `ServerShard` used by
//! the in-process engine and the simulator, but over `std::net` sockets
//! with length-prefixed frames. One server, three workers, BSP.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::collections::HashMap;

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::server::{GradScale, PullOutcome, ServerShard, ShardConfig};
use fluentps::transport::tcp::{AddressBook, TcpNode};
use fluentps::transport::{Mailbox, Message, NodeId, Postman};

const NUM_WORKERS: u32 = 3;
const ITERATIONS: u64 = 20;
const KEY: u64 = 0;

fn main() {
    let loopback: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();

    // Bind everyone on OS-chosen ports, then distribute the address book.
    let book = AddressBook::new();
    let server_node = TcpNode::bind(NodeId::Server(0), loopback, book.clone()).unwrap();
    book.insert(NodeId::Server(0), server_node.local_addr());
    let mut worker_nodes = Vec::new();
    for n in 0..NUM_WORKERS {
        let node = TcpNode::bind(NodeId::Worker(n), loopback, book.clone()).unwrap();
        book.insert(NodeId::Worker(n), node.local_addr());
        worker_nodes.push(node);
    }
    // The server needs the workers' addresses to respond: rebind its sending
    // side with the complete book.
    let server_tx = TcpNode::bind(NodeId::Server(99), loopback, book.clone()).unwrap();
    println!("server listening on {}", server_node.local_addr());

    // Server thread: the same ServerShard state machine, fed from sockets.
    let server_thread = std::thread::spawn(move || {
        let mut shard = ServerShard::new(ShardConfig {
            server_id: 0,
            num_workers: NUM_WORKERS,
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        });
        shard.init_param(KEY, vec![0.0; 8]);
        let postman = server_tx.postman();
        let mut done_workers = 0;
        while done_workers < NUM_WORKERS {
            let (_, msg) = server_node.recv().expect("server recv");
            match msg {
                Message::SPush {
                    worker,
                    progress,
                    kv,
                } => {
                    for r in shard.on_push(worker, progress, &kv) {
                        postman
                            .send(
                                NodeId::Worker(r.worker),
                                Message::PullResponse {
                                    server: 0,
                                    progress: r.progress,
                                    kv: r.kv,
                                    version: r.version,
                                },
                            )
                            .expect("send released response");
                    }
                    if progress + 1 == ITERATIONS {
                        done_workers += 1;
                    }
                }
                Message::SPull {
                    worker,
                    progress,
                    keys,
                } => match shard.on_pull(worker, progress, &keys, 0.0, None) {
                    PullOutcome::Respond { kv, version } => {
                        postman
                            .send(
                                NodeId::Worker(worker),
                                Message::PullResponse {
                                    server: 0,
                                    progress,
                                    kv,
                                    version,
                                },
                            )
                            .expect("send response");
                    }
                    PullOutcome::Deferred => {}
                },
                other => panic!("unexpected message {other:?}"),
            }
        }
        println!(
            "server done: v_train={} pushes={} dprs={}",
            shard.v_train(),
            shard.stats().pushes,
            shard.stats().dprs
        );
        shard.read_param(KEY).unwrap().to_vec()
    });

    // Worker threads: push a constant "gradient", pull, repeat.
    let worker_threads: Vec<_> = worker_nodes
        .into_iter()
        .map(|node| {
            std::thread::spawn(move || {
                let postman = node.postman();
                let me = match node.node() {
                    NodeId::Worker(n) => n,
                    _ => unreachable!(),
                };
                let mut params: HashMap<u64, Vec<f32>> = HashMap::new();
                for i in 0..ITERATIONS {
                    let grad = vec![(me + 1) as f32; 8];
                    postman
                        .send(
                            NodeId::Server(0),
                            Message::SPush {
                                worker: me,
                                progress: i,
                                kv: fluentps::transport::KvPairs::single(KEY, grad),
                            },
                        )
                        .expect("push");
                    if i + 1 == ITERATIONS {
                        break; // final iteration: no pull needed
                    }
                    postman
                        .send(
                            NodeId::Server(0),
                            Message::SPull {
                                worker: me,
                                progress: i,
                                keys: vec![KEY],
                            },
                        )
                        .expect("pull");
                    // Wait for the (possibly lazily executed) response.
                    loop {
                        let (_, msg) = node.recv().expect("worker recv");
                        if let Message::PullResponse { kv, version, .. } = msg {
                            assert!(version > i, "BSP responses carry fresh params");
                            for (k, v) in kv.iter() {
                                params.insert(k, v.to_vec());
                            }
                            break;
                        }
                    }
                }
                params
            })
        })
        .collect();

    for t in worker_threads {
        t.join().expect("worker");
    }
    let final_params = server_thread.join().expect("server");

    // Expected value: 20 iterations of mean(1, 2, 3) = 2 per element.
    let expected = ITERATIONS as f32 * (1.0 + 2.0 + 3.0) / NUM_WORKERS as f32;
    println!(
        "final parameter value: {:?} (expected {expected})",
        &final_params[..2]
    );
    assert!((final_params[0] - expected).abs() < 1e-3);
    println!("tcp_cluster: OK");
}
