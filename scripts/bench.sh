#!/usr/bin/env bash
# Run the observability benchmarks and collect machine-readable results.
#
# Usage: scripts/bench.sh [OUTPUT]
#        scripts/bench.sh --check [TOLERANCE]
#
# Runs the `obs` bench target of crates/bench (tracer record cost when
# disabled vs enabled, span-profiler cost when disabled vs one full span
# record, metrics registry ops, Chrome-trace export, the
# trace-analytics engine in events/second over a mixed-kind trace, the
# streaming analyzer's per-event windowed ingest in events/second, the
# zero-copy wire path in frames and pull round trips per second, the
# threaded engine with tracing off vs on, and the TCP engine with cluster
# trace streaming off vs on) and writes OUTPUT (default BENCH_obs.json): a
# JSON document with mean/p50/p99 nanoseconds and throughput per benchmark.
# The `engine/threaded_tracing_off` vs `engine/threaded_tracing_on` pair is
# the end-to-end tracing overhead; `collect/tcp_streaming_off` vs
# `collect/tcp_streaming_on` is the cost of shipping every node's trace
# ring to a collector service during a live TCP run; `wire/ctx_overhead_off`
# vs `wire/ctx_overhead_on` is the causal-context envelope's cost on the
# frame codec hot path (request tracing on vs off).
#
# --check: run the benchmarks into a scratch file and compare each mean
# against the committed BENCH_obs.json baseline. This is a hard gate: a
# benchmark whose fresh mean exceeds its tolerance band times the baseline
# fails the script (exit 1). Tolerance bands are per benchmark and widen as
# the measured time shrinks, because CI-machine noise dominates small
# numbers: sub-microsecond means get 3.0x, sub-millisecond 2.5x, and
# millisecond-scale runs 2.0x. Passing TOLERANCE overrides every band with
# one global factor (useful on known-noisy machines).
set -euo pipefail
cd "$(dirname "$0")/.."

check=""
tolerance=""
out="BENCH_obs.json"
if [ "${1:-}" = "--check" ]; then
  check=1
  tolerance="${2:-}"
else
  out="${1:-BENCH_obs.json}"
fi

tmp="$(mktemp)"
fresh="$(mktemp)"
trap 'rm -f "$tmp" "$fresh"' EXIT

FLUENTPS_BENCH_JSON="$tmp" cargo bench --offline -p fluentps-bench --bench obs

if [ ! -s "$tmp" ]; then
  echo "error: benchmarks produced no JSON lines" >&2
  exit 1
fi

[ -n "$check" ] && out="$fresh"
{
  printf '{"suite":"obs","benchmarks":[\n'
  # Join the JSONL lines emitted by the harness with commas.
  awk 'NR>1{printf ",\n"} {printf "%s", $0} END{printf "\n"}' "$tmp"
  printf ']}\n'
} >"$out"

if [ -z "$check" ]; then
  echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
  exit 0
fi

if [ ! -f BENCH_obs.json ]; then
  echo "bench-check: error: no committed BENCH_obs.json baseline to compare against" >&2
  exit 1
fi

awk -v tol_override="${tolerance}" '
  function mean_of(line) {
    # One benchmark per line: {"name":"...","mean_ns":...,...}
    if (match(line, /"name":"[^"]*"/)) {
      bname = substr(line, RSTART + 8, RLENGTH - 9)
      if (match(line, /"mean_ns":[0-9.]+/)) {
        return bname SUBSEP substr(line, RSTART + 10, RLENGTH - 10)
      }
    }
    return ""
  }
  # Per-bench band: small means are mostly harness and scheduler noise, so
  # the band widens as the baseline shrinks.
  function band_for(ns) {
    if (tol_override != "") return tol_override + 0
    if (ns < 1000) return 3.0       # sub-microsecond: cache/turbo jitter
    if (ns < 1000000) return 2.5    # microsecond scale
    return 2.0                      # millisecond scale: real workloads
  }
  NR == FNR {
    r = mean_of($0)
    if (r != "") { split(r, kv, SUBSEP); base[kv[1]] = kv[2] + 0 }
    next
  }
  {
    r = mean_of($0)
    if (r != "") { split(r, kv, SUBSEP); cur[kv[1]] = kv[2] + 0; order[++n] = kv[1] }
  }
  END {
    checked = 0
    failed = 0
    for (i = 1; i <= n; i++) {
      name = order[i]
      if (!(name in base)) {
        printf "bench-check: %s has no committed baseline (new benchmark? regenerate BENCH_obs.json)\n", name
        continue
      }
      checked++
      tol = band_for(base[name])
      if (base[name] > 0 && cur[name] > base[name] * tol) {
        printf "bench-check: FAIL %s mean %.1fns exceeds %.2fx committed baseline %.1fns\n", \
          name, cur[name], tol, base[name]
        failed++
      }
    }
    printf "bench-check: compared %d benchmarks against BENCH_obs.json (%d over tolerance)\n", \
      checked, failed
    if (checked == 0) {
      print "bench-check: FAIL no benchmarks matched the committed baseline"
      exit 1
    }
    exit failed > 0 ? 1 : 0
  }
' BENCH_obs.json "$fresh"
