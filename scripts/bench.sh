#!/usr/bin/env bash
# Run the observability benchmarks and collect machine-readable results.
#
# Usage: scripts/bench.sh [OUTPUT]
#
# Runs the `obs` bench target of crates/bench (tracer record cost when
# disabled vs enabled, metrics registry ops, Chrome-trace export, the
# trace-analytics engine in events/second over a mixed-kind trace, and the
# threaded engine with tracing off vs on) and writes OUTPUT (default
# BENCH_obs.json): a JSON document with mean/p50/p99 nanoseconds and
# throughput per benchmark. The `engine/threaded_tracing_off` vs
# `engine/threaded_tracing_on` pair is the end-to-end tracing overhead.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_obs.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

FLUENTPS_BENCH_JSON="$tmp" cargo bench --offline -p fluentps-bench --bench obs

if [ ! -s "$tmp" ]; then
  echo "error: benchmarks produced no JSON lines" >&2
  exit 1
fi

{
  printf '{"suite":"obs","benchmarks":[\n'
  # Join the JSONL lines emitted by the harness with commas.
  awk 'NR>1{printf ",\n"} {printf "%s", $0} END{printf "\n"}' "$tmp"
  printf ']}\n'
} >"$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
