#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Must pass from a clean checkout with an
# empty cargo registry: the workspace is hermetic (path-only dependencies,
# see DESIGN.md §7), so --offline is load-bearing, not an optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace

# Golden-file check: the Chrome-trace exporter must emit byte-stable, valid
# JSON for the fixture run (tests/golden/chrome_trace_fixture.json). Run
# explicitly so a missing or stale golden file fails CI even if test
# filtering changes.
cargo test -q --offline --test observability chrome_trace_export_matches_golden_file
