#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Must pass from a clean checkout with an
# empty cargo registry: the workspace is hermetic (path-only dependencies,
# see DESIGN.md §7), so --offline is load-bearing, not an optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace

# Golden-file check: the Chrome-trace exporter must emit byte-stable, valid
# JSON for the fixture run (tests/golden/chrome_trace_fixture.json). Run
# explicitly so a missing or stale golden file fails CI even if test
# filtering changes.
cargo test -q --offline --test observability chrome_trace_export_matches_golden_file

# Smoke round-trip through the analytics engine: trace a demo run, analyze
# the export, and require the report's straggler and staleness sections to
# carry data. Uses the release binary the build step above produced.
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
./target/release/repro --trace "$smokedir/trace.jsonl" >/dev/null
./target/release/repro analyze "$smokedir/trace.jsonl" --ssp 2 >"$smokedir/report.txt"
test "$(sed -n '/== straggler scoreboard ==/,/^$/p' "$smokedir/report.txt" | wc -l)" -gt 3
test "$(sed -n '/== staleness at pull time ==/,/^$/p' "$smokedir/report.txt" | wc -l)" -gt 3

# Committed benchmark results must parse under the in-tree JSON validator.
for bench_json in BENCH_*.json; do
  [ -e "$bench_json" ] || continue
  ./target/release/repro validate-json "$bench_json"
done

# Chaos smoke: a seeded fault schedule (drops, reorder-delays, duplicates)
# on the live resilient TCP engine must be bit-deterministic — same seed,
# same logical outcome. Run twice and diff the stats/fingerprint lines.
./target/release/repro chaos --seed 42 --workers 1 --servers 2 --iters 20 --faults 8 \
  >"$smokedir/chaos_a.txt" 2>/dev/null
./target/release/repro chaos --seed 42 --workers 1 --servers 2 --iters 20 --faults 8 \
  >"$smokedir/chaos_b.txt" 2>/dev/null
diff "$smokedir/chaos_a.txt" "$smokedir/chaos_b.txt"

# Kill-and-recover smoke: crash a server mid-training; the supervisor must
# replace it from a checkpoint and the run must converge and exit 0 with no
# server left dead.
./target/release/repro chaos --seed 13 --workers 2 --servers 2 --iters 25 --kill 0@8 \
  >"$smokedir/chaos_kill.txt" 2>/dev/null
grep -q '^chaos-dead-at-end 0$' "$smokedir/chaos_kill.txt"

# Collected-run smoke: every node of a chaos run (faults + a mid-run server
# kill) streams its trace ring to a central collector; the merged,
# clock-aligned timeline must balance exactly (received + dropped ==
# emitted per node), list every actor exactly once, carry the recovery
# events, and feed the analyzer end to end.
./target/release/repro collect "$smokedir/merged.jsonl" \
  --seed 11 --workers 2 --servers 2 --iters 30 --faults 6 --kill 0@6 \
  >"$smokedir/collect.txt" 2>/dev/null
grep -q '^collect-balanced ok$' "$smokedir/collect.txt"
grep -q '^chaos-dead-at-end 0$' "$smokedir/collect.txt"
grep -Eq '^collect-recovery .*checkpoint_restored=[1-9][0-9]* ' "$smokedir/collect.txt"
for node in scheduler server0 server1 worker0 worker1; do
  test "$(grep -c "^collect-node $node " "$smokedir/collect.txt")" -eq 1
done
./target/release/repro analyze "$smokedir/merged.jsonl" >"$smokedir/collect_report.txt"
test "$(sed -n '/== straggler scoreboard ==/,/^$/p' "$smokedir/collect_report.txt" | wc -l)" -gt 3

# Live health smoke: run a kill-and-recover chaos job with an introspection
# endpoint and scrape its streaming health engine over HTTP *mid-run*: /slo
# must serve windowed SLO text, and /alerts must show the injected kill
# raising the dead_nodes liveness alert and resolving it after the
# checkpoint replacement. The chaos-alert stdout lines are the
# deterministic backstop for the same sequence.
http_get() {
  exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' "$2" >&3
  cat <&3
  exec 3<&- 3>&-
}
health_port=$((21000 + RANDOM % 20000))
./target/release/repro chaos --seed 13 --workers 2 --servers 2 --iters 120 --kill 0@8 \
  --metrics-addr "127.0.0.1:$health_port" >"$smokedir/chaos_health.txt" 2>/dev/null &
health_pid=$!
alerts_ok=""
slo_ok=""
for _ in $(seq 1 300); do
  body="$(http_get "$health_port" /alerts 2>/dev/null || true)"
  case "$body" in
    *'"rule":"dead_nodes","transition":"firing"'*'"rule":"dead_nodes","transition":"resolved"'*)
      alerts_ok=1 ;;
  esac
  slo="$(http_get "$health_port" /slo 2>/dev/null || true)"
  case "$slo" in
    *'slo events '*) slo_ok=1 ;;
  esac
  [ -n "$alerts_ok" ] && [ -n "$slo_ok" ] && break
  kill -0 "$health_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$health_pid"
grep -q '^chaos-dead-at-end 0$' "$smokedir/chaos_health.txt"
grep -q '^chaos-alert rule=dead_nodes transition=firing' "$smokedir/chaos_health.txt"
grep -q '^chaos-alert rule=dead_nodes transition=resolved' "$smokedir/chaos_health.txt"
grep -q '^chaos-alert-fingerprint ' "$smokedir/chaos_health.txt"
[ -n "$slo_ok" ] || { echo "ci: /slo never answered mid-run" >&2; exit 1; }
[ -n "$alerts_ok" ] || { echo "ci: /alerts never showed the kill firing then resolving" >&2; exit 1; }

# Supervisor-failover smoke: run a 3-replica control plane and kill the
# leader mid-run. A follower must win the election (scraped from /healthz:
# term advances past 1 and a different replica leads) and training must
# still finish bit-deterministically — the stats/fingerprint lines of a
# same-seed re-run must match exactly. Which follower wins may vary with
# thread timing, so the /healthz check accepts either; the training
# fingerprint must not.
failover_port=$((21000 + RANDOM % 20000))
./target/release/repro chaos --seed 23 --workers 1 --servers 2 --iters 20000 \
  --supervisors 3 --kill-supervisor 0@6 --metrics-addr "127.0.0.1:$failover_port" \
  >"$smokedir/failover_a.txt" 2>/dev/null &
failover_pid=$!
failover_ok=""
for _ in $(seq 1 300); do
  hz="$(http_get "$failover_port" /healthz 2>/dev/null || true)"
  case "$hz" in
    *'consensus term '[2-9]*' leader supervisor'[12]*) failover_ok=1; break ;;
  esac
  kill -0 "$failover_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$failover_pid"
[ -n "$failover_ok" ] || { echo "ci: /healthz never showed a follower taking over leadership" >&2; exit 1; }
./target/release/repro chaos --seed 23 --workers 1 --servers 2 --iters 20000 \
  --supervisors 3 --kill-supervisor 0@6 \
  >"$smokedir/failover_b.txt" 2>/dev/null
grep -E '^chaos-(stats|dead-at-end|fingerprint)' "$smokedir/failover_a.txt" >"$smokedir/failover_a_core.txt"
grep -E '^chaos-(stats|dead-at-end|fingerprint)' "$smokedir/failover_b.txt" >"$smokedir/failover_b_core.txt"
diff "$smokedir/failover_a_core.txt" "$smokedir/failover_b_core.txt"
grep -q '^chaos-dead-at-end 0$' "$smokedir/failover_a.txt"

# Quorum-loss smoke: kill 2 of the 3 supervisor replicas. The control
# plane must degrade *explicitly* — /healthz flips to 503 with a leaderless
# consensus line — rather than hang or split-brain, and the data plane
# (training) must still run to completion with no server dead.
quorum_port=$((21000 + RANDOM % 20000))
./target/release/repro chaos --seed 29 --workers 2 --servers 2 --iters 20000 \
  --supervisors 3 --kill-supervisor 0@4 --kill-supervisor 1@10 \
  --metrics-addr "127.0.0.1:$quorum_port" >"$smokedir/quorum.txt" 2>/dev/null &
quorum_pid=$!
quorum_ok=""
for _ in $(seq 1 300); do
  hz="$(http_get "$quorum_port" /healthz 2>/dev/null || true)"
  case "$hz" in
    *'503'*'consensus term '[1-9]*' leader none'*) quorum_ok=1; break ;;
  esac
  kill -0 "$quorum_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$quorum_pid"
[ -n "$quorum_ok" ] || { echo "ci: /healthz never reported explicit leaderless degradation" >&2; exit 1; }
grep -q '^chaos-dead-at-end 0$' "$smokedir/quorum.txt"

# Profiler smoke: run a profiled live TCP training job with an
# introspection endpoint, scrape /profile?format=speedscope over HTTP
# *mid-run*, validate the export with the in-tree JSON validator, and
# require spans from every instrumented layer (server loop, worker client,
# wire codec). The run's own stdout top-table and profile-span lines are
# checked after it exits.
prof_port=$((21000 + RANDOM % 20000))
./target/release/repro profile --workers 2 --servers 2 --iters 4000 \
  --metrics-addr "127.0.0.1:$prof_port" >"$smokedir/profile.txt" 2>/dev/null &
prof_pid=$!
prof_ok=""
for _ in $(seq 1 300); do
  http_get "$prof_port" '/profile?format=speedscope' 2>/dev/null \
    | sed -n '/^{/,$p' >"$smokedir/profile_speedscope.json" || true
  if grep -q '"name":"server/apply_push"' "$smokedir/profile_speedscope.json" \
     && grep -q '"name":"worker/push"' "$smokedir/profile_speedscope.json" \
     && grep -q '"name":"wire/decode"' "$smokedir/profile_speedscope.json"; then
    prof_ok=1
    break
  fi
  kill -0 "$prof_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$prof_pid"
[ -n "$prof_ok" ] || { echo "ci: /profile never served all instrumented layers mid-run" >&2; exit 1; }
./target/release/repro validate-json "$smokedir/profile_speedscope.json"
grep -q '^profile-span path=worker/step ' "$smokedir/profile.txt"
grep -q 'profile: top ' "$smokedir/profile.txt"

# Waterfall smoke: end-to-end causal request tracing. (a) Determinism: two
# same-seed no-kill chaos runs must print bit-identical `waterfall-` lines —
# assembly is a pure function of the logical message set (ids + fold keys),
# never of wall-clock timings. The repro command itself exits 1 if the
# retained/sampled_out/observed balance or the per-request gapless audit
# fails, so running it is the assertion. (b) Recovery: a kill run must
# retain a control-plane waterfall (supervisor request ids carry bit 63 —
# the checkpoint restore shows up as a traced request) and still pass both
# audits. (c) Live: a mid-run /waterfall?slowest=3 scrape must serve NDJSON
# whose balance header balances and whose every line passes the in-tree
# JSON validator.
./target/release/repro waterfall --seed 42 --workers 1 --servers 2 --iters 20 --faults 8 \
  >"$smokedir/wf_a.txt" 2>/dev/null
./target/release/repro waterfall --seed 42 --workers 1 --servers 2 --iters 20 --faults 8 \
  >"$smokedir/wf_b.txt" 2>/dev/null
grep '^waterfall-' "$smokedir/wf_a.txt" >"$smokedir/wf_a_core.txt"
grep '^waterfall-' "$smokedir/wf_b.txt" >"$smokedir/wf_b_core.txt"
diff "$smokedir/wf_a_core.txt" "$smokedir/wf_b_core.txt"
grep -Eq '^waterfall-balance observed=[1-9][0-9]* retained=' "$smokedir/wf_a.txt"
grep -q '^waterfall-gapless ok$' "$smokedir/wf_a.txt"

./target/release/repro waterfall --seed 13 --workers 2 --servers 2 --iters 25 --kill 0@8 \
  >"$smokedir/wf_kill.txt" 2>/dev/null
grep -q '^waterfall-request id=92233' "$smokedir/wf_kill.txt" # control-plane bit set
grep -q '^waterfall-gapless ok$' "$smokedir/wf_kill.txt"

wf_port=$((21000 + RANDOM % 20000))
./target/release/repro chaos --seed 13 --workers 2 --servers 2 --iters 4000 --kill 0@8 \
  --metrics-addr "127.0.0.1:$wf_port" >"$smokedir/chaos_wf.txt" 2>/dev/null &
wf_pid=$!
wf_ok=""
for _ in $(seq 1 300); do
  http_get "$wf_port" '/waterfall?slowest=3' 2>/dev/null \
    | sed -n '/^{/,$p' >"$smokedir/wf_scrape.ndjson" || true
  if grep -q '"balanced":true' "$smokedir/wf_scrape.ndjson" \
    && grep -q '"request_id":' "$smokedir/wf_scrape.ndjson"; then
    wf_ok=1
    break
  fi
  kill -0 "$wf_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$wf_pid"
[ -n "$wf_ok" ] || { echo "ci: /waterfall never served a balanced NDJSON body mid-run" >&2; exit 1; }
while IFS= read -r line; do
  printf '%s\n' "$line" >"$smokedir/wf_line.json"
  ./target/release/repro validate-json "$smokedir/wf_line.json"
done <"$smokedir/wf_scrape.ndjson"

# Perf gate: re-run the benchmarks and compare each mean against the
# committed BENCH_obs.json. Hard-fails past the per-bench tolerance bands
# (wide enough for CI-machine noise; see scripts/bench.sh for the bands —
# pass a global TOLERANCE there to loosen them on known-noisy hardware).
bash scripts/bench.sh --check
