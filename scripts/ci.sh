#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Must pass from a clean checkout with an
# empty cargo registry: the workspace is hermetic (path-only dependencies,
# see DESIGN.md §7), so --offline is load-bearing, not an optimization.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
