//! FluentPS facade crate: re-exports the whole workspace.
pub use fluentps_baseline as baseline;
pub use fluentps_core as core;
pub use fluentps_experiments as experiments;
pub use fluentps_ml as ml;
pub use fluentps_obs as obs;
pub use fluentps_simnet as simnet;
pub use fluentps_transport as transport;
