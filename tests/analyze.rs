//! Cross-crate tests for the trace-analytics engine: counting invariants
//! under ring overwriting, the SSP staleness bound as *observed by the
//! analyzer*, and the empirical PSSP block-rate curve against the
//! analytical `Pr[blocked | gap=k]` from `fluentps_core::pssp`.

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::pssp;
use fluentps::core::server::{GradScale, ServerShard, ShardConfig};
use fluentps::experiments::driver::EngineKind;
use fluentps::experiments::tracerun;
use fluentps::obs::analyze::analyze;
use fluentps::obs::{EventKind, RecordArgs, TraceCollector};
use fluentps::transport::KvPairs;
use fluentps_util::proptest::prelude::*;

proptest! {
    /// Per-kind totals survive ring overwriting: whatever the analyzer sees
    /// in the buffer, [`Analysis::recorded`] still equals the true number of
    /// recorded events per kind, the analyzed counts match the buffered
    /// events exactly, and recorded = analyzed + dropped overall.
    #[test]
    fn analyzer_counts_survive_ring_overwrites(
        ops in prop::collection::vec(
            (0usize..EventKind::ALL.len(), 0u32..3, 0u32..2, 0u64..50),
            1..120,
        ),
        capacity in 1usize..16,
    ) {
        let collector = TraceCollector::wall(capacity);
        let tracer = collector.tracer();
        let mut true_counts = [0u64; EventKind::ALL.len()];
        for &(kind_idx, worker, shard, progress) in &ops {
            let kind = EventKind::ALL[kind_idx];
            tracer.record(
                kind,
                RecordArgs::new().shard(shard).worker(worker).progress(progress),
            );
            true_counts[kind.index()] += 1;
        }
        let trace = collector.snapshot();
        let a = analyze(&trace);
        // Recorded totals are exact, regardless of what the ring dropped.
        for kind in EventKind::ALL {
            prop_assert_eq!(a.count(kind), true_counts[kind.index()]);
        }
        // Analyzed counts describe exactly the buffered events.
        for kind in EventKind::ALL {
            let buffered = trace.events.iter().filter(|e| e.kind == kind).count() as u64;
            prop_assert_eq!(a.analyzed[kind.index()], buffered);
        }
        // Conservation: everything recorded was either analyzed or dropped.
        let recorded: u64 = a.recorded.iter().sum();
        let analyzed: u64 = a.analyzed.iter().sum();
        prop_assert_eq!(recorded, analyzed + a.dropped);
        prop_assert_eq!(trace.events.len(), ops.len().min(capacity));
    }

    /// SSP bound, as seen end-to-end through the trace: drive a shard with
    /// arbitrary push/pull interleavings under `Ssp { s }` and assert the
    /// analyzer never observes a *granted* pull at staleness ≥ s.
    #[test]
    fn ssp_granted_staleness_stays_below_bound(
        s in 1u64..4,
        seeds in prop::collection::vec((0u32..3, any::<bool>()), 1..150),
    ) {
        let num_workers = 3u32;
        let collector = TraceCollector::wall(1 << 12);
        let mut shard = ServerShard::new(ShardConfig {
            server_id: 0,
            num_workers,
            model: SyncModel::Ssp { s },
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        });
        shard.set_tracer(collector.tracer());
        shard.init_param(0, vec![0.0]);
        let mut next_iter = vec![0u64; num_workers as usize];
        for &(w, is_pull) in &seeds {
            let i = next_iter[w as usize];
            if is_pull {
                let _ = shard.on_pull(w, i.saturating_sub(1), &[0], 0.5, None);
            } else {
                shard.on_push(w, i, &KvPairs::single(0, vec![1.0]));
                next_iter[w as usize] += 1;
            }
        }
        let a = analyze(&collector.snapshot());
        if let Some(max) = a.max_granted_staleness() {
            prop_assert!(max < s, "granted a pull at staleness {max} under SSP s={s}");
        }
        // Every gap entry is internally consistent.
        for g in &a.gaps {
            prop_assert_eq!(g.pulls, g.granted() + g.deferred);
        }
    }
}

/// The paper's PSSP claim, measured: run the traced demo under
/// `PsspConst { s, c }` and compare the analyzer's empirical block rate per
/// gap against the analytical `Pr[blocked | gap=k]` from `pssp.rs`.
#[test]
fn pssp_empirical_block_rate_matches_analytical() {
    let (s, c) = (2u64, 0.5f64);
    let mut cfg = tracerun::demo_config(false);
    cfg.engine = EngineKind::FluentPs {
        model: SyncModel::PsspConst { s, c },
        policy: DprPolicy::LazyExecution,
    };
    cfg.max_iters = 80;
    let r = fluentps::experiments::driver::run(&cfg);
    let trace = r.trace.expect("traced run returns a trace");
    let a = analyze(&trace);
    assert!(!a.gaps.is_empty(), "no pulls observed");
    let mut checked_beyond_bound = false;
    for g in &a.gaps {
        let analytical = pssp::constant_probability(c, s, g.gap);
        if g.gap < s {
            // Below the bound every pull is granted, deterministically.
            assert_eq!(
                g.deferred, 0,
                "gap {} deferred {} pulls below the SSP bound",
                g.gap, g.deferred
            );
            continue;
        }
        if g.pulls < 30 {
            continue; // too few samples for a rate comparison
        }
        checked_beyond_bound = true;
        let diff = (g.block_rate() - analytical).abs();
        assert!(
            diff <= 0.15,
            "gap {}: empirical block rate {:.3} vs analytical {:.3} (n={})",
            g.gap,
            g.block_rate(),
            analytical,
            g.pulls
        );
    }
    assert!(
        checked_beyond_bound,
        "run produced no well-sampled gaps beyond the bound; gaps: {:?}",
        a.gaps
    );
}

/// Ground-truth mode for the wire matcher: run a real TCP cluster under
/// reorder/duplicate chaos with causal ids on the wire, then replay the
/// analyzer's FIFO pairing heuristic against the exact `(request_id,
/// attempt)` ids. The cross-check *reports* a mismatch rate instead of
/// panicking — reordering legitimately breaks FIFO pairing — and its
/// counters must stay internally consistent.
#[test]
fn wire_check_reports_fifo_mismatch_rate_under_reorder_chaos() {
    use fluentps::experiments::live::{run_chaos, ChaosConfig};
    let r = run_chaos(&ChaosConfig {
        num_workers: 1,
        num_servers: 2,
        max_iters: 20,
        faults: 8, // seeded drops, reorder-delays and duplicates
        seed: 42,
        keep_trace: true,
        ..ChaosConfig::default()
    });
    let trace = r.trace.expect("keep_trace returns the collector snapshot");
    let a = analyze(&trace);
    let check = a
        .wire_check
        .expect("causal ids were stamped on the wire, so the audit runs");
    assert!(check.checked > 0, "no wire pairs audited: {check:?}");
    assert!(
        check.mismatches <= check.checked,
        "mismatches exceed audited pairs: {check:?}"
    );
    let rate = check.mismatch_rate();
    assert!(
        (0.0..=1.0).contains(&rate),
        "mismatch rate out of range: {rate}"
    );
}
