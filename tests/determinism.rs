//! Seed determinism: a fixed master seed must reproduce experiment output
//! bit-for-bit, run to run. Every random choice in a simulated experiment —
//! dataset synthesis, parameter init, batch sampling, compute jitter,
//! straggler draws — flows from `DriverConfig::seed` through
//! `fluentps_util::rng::StdRng`, so two runs of the same config are the
//! same experiment. The figure runners and the `repro` binary inherit the
//! same guarantee.

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult};
use fluentps::experiments::figures::fig3;
use fluentps::ml::data::SyntheticSpec;

fn cfg(seed: u64) -> DriverConfig {
    DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
        },
        num_workers: 3,
        num_servers: 2,
        max_iters: 30,
        model: ModelKind::Softmax,
        dataset: Some(SyntheticSpec {
            dim: 12,
            classes: 3,
            n_train: 300,
            n_test: 60,
            margin: 2.5,
            modes: 1,
            label_noise: 0.05,
            seed,
        }),
        batch_size: 16,
        eval_every: 10,
        seed,
        ..DriverConfig::default()
    }
}

/// A bit-exact digest of everything observable in a run. Floats go through
/// `to_bits` so "close enough" can never pass; the parameter map is folded
/// in sorted-key order because `ParamMap` is a `HashMap`.
fn fingerprint(r: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "acc={:08x} total={:016x} compute={:016x} comm={:016x} dpr={:016x} maxcomm={:016x} barriers={}\n",
        r.final_accuracy.to_bits(),
        r.total_time.to_bits(),
        r.compute_time_mean.to_bits(),
        r.comm_time_mean.to_bits(),
        r.dprs_per_100.to_bits(),
        r.max_server_comm.to_bits(),
        r.barrier_count,
    ));
    out.push_str(&format!("stats={:?}\n", r.stats));
    for p in r.curve.points() {
        out.push_str(&format!(
            "point iter={} t={:016x} acc={:08x} loss={:08x}\n",
            p.iter,
            p.time.to_bits(),
            p.accuracy.to_bits(),
            p.loss.to_bits(),
        ));
    }
    if let Some(params) = &r.final_params {
        let mut keys: Vec<u64> = params.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            out.push_str(&format!("param {k}:"));
            for v in &params[&k] {
                out.push_str(&format!(" {:08x}", v.to_bits()));
            }
            out.push('\n');
        }
    }
    out
}

#[test]
fn same_seed_same_run_bit_for_bit() {
    let a = run(&cfg(1234));
    let b = run(&cfg(1234));
    assert!(!a.curve.points().is_empty(), "run produced no curve points");
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_are_different_experiments() {
    let a = run(&cfg(1));
    let b = run(&cfg(2));
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "changing the master seed left the run unchanged"
    );
}

#[test]
fn figure_driver_output_is_deterministic() {
    let render = || {
        fig3::run_figure()
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = render();
    let second = render();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "figure tables changed between identical runs"
    );
}
