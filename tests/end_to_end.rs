//! End-to-end integration: training through the live threaded engine and
//! over real TCP sockets, spanning every crate in the workspace.

use std::collections::HashMap;

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::engine::{Cluster, EngineConfig};
use fluentps::core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps::core::server::GradScale;
use fluentps::ml::data::{synthetic, BatchSampler, SyntheticSpec};
use fluentps::ml::models::{Model, SoftmaxRegression};
use fluentps::ml::optim::{Optimizer, Sgd};

fn dataset(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        dim: 16,
        classes: 4,
        n_train: 1200,
        n_test: 300,
        margin: 3.0,
        modes: 1,
        label_noise: 0.0,
        seed,
    }
}

/// Train through the threaded in-process engine under `model`; return final
/// test accuracy.
fn train_inproc(model: SyncModel, num_workers: u32, iters: u64) -> f32 {
    let spec = dataset(41);
    let (train, test) = synthetic(spec);
    let ml_model = SoftmaxRegression {
        dim: spec.dim,
        classes: spec.classes,
    };
    let init = ml_model.init_params(41);
    let specs: Vec<ParamSpec> = ml_model
        .param_shapes()
        .iter()
        .map(|s| ParamSpec {
            key: s.key,
            len: s.len,
        })
        .collect();
    let map = EpsSlicer { max_chunk: 64 }.slice(&specs, 2);
    let cfg = EngineConfig {
        num_workers,
        num_servers: 2,
        model,
        policy: DprPolicy::LazyExecution,
        grad_scale: GradScale::DivideByN,
        seed: 41,
    };
    let (cluster, workers) = Cluster::launch(cfg, map, &init);
    let handles: Vec<_> = workers
        .into_iter()
        .map(|mut client| {
            let train = train.clone();
            let init = init.clone();
            std::thread::spawn(move || {
                let n = client.worker_id();
                let mut params = init;
                let mut opt = Sgd::new(0.3, 0.9, 0.0);
                let mut sampler =
                    BatchSampler::new(train.partition(n, num_workers), 16, 100 + n as u64);
                for i in 0..iters {
                    let batch = train.batch(&sampler.next_indices());
                    let (_, grads) = ml_model.loss_and_grad(&params, &batch);
                    let deltas = opt.deltas(&params, &grads);
                    client.spush(i, &deltas).unwrap();
                    client.spull_wait(i, &mut params).unwrap();
                }
                params
            })
        })
        .collect();
    let params: Vec<HashMap<u64, Vec<f32>>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    cluster.shutdown();
    ml_model.accuracy(&params[0], &test)
}

#[test]
fn bsp_engine_trains_to_high_accuracy() {
    let acc = train_inproc(SyncModel::Bsp, 3, 250);
    assert!(acc > 0.8, "BSP engine accuracy {acc}");
}

#[test]
fn ssp_engine_trains_to_high_accuracy() {
    let acc = train_inproc(SyncModel::Ssp { s: 2 }, 3, 250);
    assert!(acc > 0.8, "SSP engine accuracy {acc}");
}

#[test]
fn pssp_engine_trains_to_high_accuracy() {
    let acc = train_inproc(SyncModel::PsspConst { s: 2, c: 0.5 }, 3, 250);
    assert!(acc > 0.8, "PSSP engine accuracy {acc}");
}

#[test]
fn bsp_final_parameters_identical_across_workers() {
    // Under BSP every worker ends with byte-identical parameters: the full
    // barrier makes the parallel execution equivalent to sequential SGD over
    // averaged gradients.
    let spec = dataset(43);
    let (train, _) = synthetic(spec);
    let ml_model = SoftmaxRegression {
        dim: spec.dim,
        classes: spec.classes,
    };
    let init = ml_model.init_params(43);
    let specs: Vec<ParamSpec> = ml_model
        .param_shapes()
        .iter()
        .map(|s| ParamSpec {
            key: s.key,
            len: s.len,
        })
        .collect();
    let map = EpsSlicer { max_chunk: 32 }.slice(&specs, 3);
    let cfg = EngineConfig {
        num_workers: 4,
        num_servers: 3,
        model: SyncModel::Bsp,
        policy: DprPolicy::LazyExecution,
        grad_scale: GradScale::DivideByN,
        seed: 43,
    };
    let (cluster, workers) = Cluster::launch(cfg, map, &init);
    let handles: Vec<_> = workers
        .into_iter()
        .map(|mut client| {
            let train = train.clone();
            let init = init.clone();
            std::thread::spawn(move || {
                let n = client.worker_id();
                let mut params = init;
                let mut opt = Sgd::new(0.2, 0.0, 0.0);
                let mut sampler = BatchSampler::new(train.partition(n, 4), 8, 7 + n as u64);
                for i in 0..40 {
                    let batch = train.batch(&sampler.next_indices());
                    let (_, grads) = ml_model.loss_and_grad(&params, &batch);
                    let deltas = opt.deltas(&params, &grads);
                    client.spush(i, &deltas).unwrap();
                    client.spull_wait(i, &mut params).unwrap();
                }
                params
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    cluster.shutdown();
    for w in 1..results.len() {
        for (key, vals) in &results[0] {
            assert_eq!(
                vals, &results[w][key],
                "worker {w} diverged at key {key} under BSP"
            );
        }
    }
}

#[test]
fn tcp_transport_carries_a_full_training_exchange() {
    use fluentps::core::server::{PullOutcome, ServerShard, ShardConfig};
    use fluentps::transport::tcp::{AddressBook, TcpNode};
    use fluentps::transport::{Mailbox, Message, NodeId, Postman};

    let loopback: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
    let book = AddressBook::new();
    let server_rx = TcpNode::bind(NodeId::Server(0), loopback, book.clone()).unwrap();
    book.insert(NodeId::Server(0), server_rx.local_addr());
    let worker = TcpNode::bind(NodeId::Worker(0), loopback, book.clone()).unwrap();
    book.insert(NodeId::Worker(0), worker.local_addr());
    let server_tx = TcpNode::bind(NodeId::Server(1), loopback, book).unwrap();

    let server = std::thread::spawn(move || {
        let mut shard = ServerShard::new(ShardConfig {
            num_workers: 1,
            model: SyncModel::Bsp,
            ..ShardConfig::default()
        });
        shard.init_param(0, vec![0.0; 4]);
        let postman = server_tx.postman();
        for _ in 0..6 {
            // 3 iterations × (push + pull)
            let (_, msg) = server_rx.recv().unwrap();
            match msg {
                Message::SPush {
                    worker,
                    progress,
                    kv,
                } => {
                    for r in shard.on_push(worker, progress, &kv) {
                        postman
                            .send(
                                NodeId::Worker(r.worker),
                                Message::PullResponse {
                                    server: 0,
                                    progress: r.progress,
                                    kv: r.kv,
                                    version: r.version,
                                },
                            )
                            .unwrap();
                    }
                }
                Message::SPull {
                    worker,
                    progress,
                    keys,
                } => {
                    if let PullOutcome::Respond { kv, version } =
                        shard.on_pull(worker, progress, &keys, 0.0, None)
                    {
                        postman
                            .send(
                                NodeId::Worker(worker),
                                Message::PullResponse {
                                    server: 0,
                                    progress,
                                    kv,
                                    version,
                                },
                            )
                            .unwrap();
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        shard.read_param(0).unwrap().to_vec()
    });

    let postman = worker.postman();
    for i in 0..3u64 {
        postman
            .send(
                NodeId::Server(0),
                Message::SPush {
                    worker: 0,
                    progress: i,
                    kv: fluentps::transport::KvPairs::single(0, vec![1.0; 4]),
                },
            )
            .unwrap();
        postman
            .send(
                NodeId::Server(0),
                Message::SPull {
                    worker: 0,
                    progress: i,
                    keys: vec![0],
                },
            )
            .unwrap();
        let (_, msg) = worker.recv().unwrap();
        match msg {
            Message::PullResponse { kv, .. } => {
                assert_eq!(kv.vals, vec![(i + 1) as f32; 4]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(server.join().unwrap(), vec![3.0; 4]);
}

#[test]
fn partial_pulls_fetch_only_requested_keys() {
    use fluentps::core::api::{FluentPs, SlicerChoice};

    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 64]);
    init.insert(1u64, vec![0.0f32; 64]);
    init.insert(2u64, vec![0.0f32; 8]);
    let (cluster, mut workers) = FluentPs::builder()
        .workers(1)
        .servers(2)
        .model(SyncModel::Asp)
        .slicer(SlicerChoice::Eps { max_chunk: 16 })
        .launch(&init);
    let mut w = workers.pop().unwrap();

    let grads: HashMap<u64, Vec<f32>> = [
        (0u64, vec![1.0f32; 64]),
        (1u64, vec![2.0f32; 64]),
        (2u64, vec![3.0f32; 8]),
    ]
    .into();
    w.spush(0, &grads).unwrap();

    // Pull only key 1: key 0 and key 2 must stay untouched locally.
    let mut params: HashMap<u64, Vec<f32>> = HashMap::new();
    let report = w.spull_keys_wait(0, &[1], &mut params).unwrap();
    assert!(report.responses >= 1);
    assert_eq!(params[&1], vec![2.0; 64]);
    assert!(!params.contains_key(&0));
    assert!(!params.contains_key(&2));

    // A later full pull completes the picture.
    w.spull_wait(0, &mut params).unwrap();
    assert_eq!(params[&0], vec![1.0; 64]);
    assert_eq!(params[&2], vec![3.0; 8]);
    cluster.shutdown();
}

#[test]
fn checkpoint_restore_preserves_training_through_server_replacement() {
    use fluentps::core::checkpoint::ShardCheckpoint;
    use fluentps::core::server::{PullOutcome, ServerShard, ShardConfig};
    use fluentps::transport::KvPairs;

    // Train a shard, checkpoint it, "replace" the server, keep training;
    // the final parameters must equal an uninterrupted run.
    let mk = || {
        ServerShard::new(ShardConfig {
            num_workers: 2,
            model: SyncModel::Bsp,
            ..ShardConfig::default()
        })
    };
    let push = |shard: &mut ServerShard, i: u64| {
        for w in 0..2 {
            shard.on_push(w, i, &KvPairs::single(0, vec![1.0; 4]));
        }
    };

    // Uninterrupted reference run: 6 iterations.
    let mut reference = mk();
    reference.init_param(0, vec![0.0; 4]);
    for i in 0..6 {
        push(&mut reference, i);
    }

    // Interrupted run: 3 iterations, checkpoint, restore into a new shard,
    // 3 more iterations.
    let mut first = mk();
    first.init_param(0, vec![0.0; 4]);
    for i in 0..3 {
        push(&mut first, i);
    }
    let cp = ShardCheckpoint::capture(&first, &[0]);
    let restored_bytes = cp.to_bytes();
    let cp = ShardCheckpoint::from_bytes(restored_bytes).unwrap();
    let mut second = mk();
    cp.restore_into(&mut second);
    for i in 3..6 {
        push(&mut second, i);
    }

    assert_eq!(second.v_train(), reference.v_train());
    assert_eq!(second.read_param(0), reference.read_param(0));
    // And it still answers pulls correctly.
    assert!(matches!(
        second.on_pull(0, 5, &[0], 0.5, None),
        PullOutcome::Respond { .. }
    ));
}
