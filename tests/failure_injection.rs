//! Failure injection: what each synchronization model does when a worker
//! fail-stops, how EPS rebalances around a dead server, and whether the
//! live fault-tolerant TCP engine survives crashes and chaos schedules.

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::eps::{EpsSlicer, ParamSpec};
use fluentps::core::scheduler::Scheduler;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::live::{run_chaos, ChaosConfig};
use fluentps::simnet::compute::StragglerSpec;
use fluentps::transport::NodeId;

fn cfg(model: SyncModel, fail: Option<(u32, u64)>) -> DriverConfig {
    DriverConfig {
        engine: EngineKind::FluentPs {
            model,
            policy: DprPolicy::LazyExecution,
        },
        num_workers: 6,
        num_servers: 2,
        max_iters: 40,
        model: ModelKind::TimingOnly {
            params: vec![
                ParamSpec { key: 0, len: 5_000 },
                ParamSpec { key: 1, len: 5_000 },
            ],
        },
        dataset: None,
        compute_base: 2.0,
        compute_jitter: 0.1,
        stragglers: StragglerSpec::none(),
        fail_worker: fail,
        eval_every: 0,
        seed: 91,
        ..DriverConfig::default()
    }
}

#[test]
fn bsp_stalls_at_the_failed_iteration() {
    // Worker 3 dies after computing iteration 10: under BSP, V_train can
    // never pass 10 — every surviving worker blocks on the barrier forever.
    let r = run(&cfg(SyncModel::Bsp, Some((3, 10))));
    assert_eq!(
        r.stats.v_train_advances,
        10 * 2, // 10 iterations × 2 shards
        "BSP must stall exactly at the failure point"
    );
}

#[test]
fn ssp_stalls_s_iterations_later() {
    // SSP lets survivors run s iterations past the stall before blocking.
    let s = 3u64;
    let r = run(&cfg(SyncModel::Ssp { s }, Some((3, 10))));
    assert_eq!(r.stats.v_train_advances, 10 * 2);
    // Survivors pushed up to iteration 10 + s − 1 before their pulls parked.
    assert!(r.stats.pushes >= 5 * (10 + s) * 2);
}

#[test]
fn drop_stragglers_survives_the_failure() {
    // With N_t = 5 of 6, the dead worker is simply dropped every iteration
    // and training completes the full budget.
    let r = run(&cfg(SyncModel::DropStragglers { n_t: 5 }, Some((3, 10))));
    assert_eq!(
        r.stats.v_train_advances,
        40 * 2,
        "drop-stragglers must complete all iterations"
    );
}

#[test]
fn healthy_run_completes_under_every_model() {
    for model in [
        SyncModel::Bsp,
        SyncModel::Ssp { s: 2 },
        SyncModel::DropStragglers { n_t: 5 },
        SyncModel::Asp,
    ] {
        let r = run(&cfg(model, None));
        assert_eq!(r.stats.v_train_advances, 40 * 2, "{model:?}");
    }
}

#[test]
fn live_tcp_run_survives_a_server_kill_mid_training() {
    // A real TCP cluster, SSP s = 2, server 0 crashes once its shard's
    // V_train reaches 8. The supervisor detects the death via missed
    // heartbeats and spawns a replacement from the latest checkpoint;
    // worker retries replay the lost pushes and every worker completes all
    // of its iterations. `run_chaos` asserts inside every worker loop that
    // each granted pull respects the SSP staleness bound — including the
    // pulls answered by the replacement.
    let r = run_chaos(&ChaosConfig {
        num_workers: 2,
        num_servers: 2,
        max_iters: 25,
        staleness: 2,
        kill_server: Some((0, 8)),
        seed: 13,
        ..ChaosConfig::default()
    });
    assert_eq!(r.dead_at_end, 0, "replacement must rejoin the cluster");
    // Both incarnations of server 0 merge under its id; every iteration's
    // push landed exactly once (replays are deduplicated, not dropped).
    assert!(
        r.stats[0].pushes >= 2 * 25,
        "merged pushes on the killed server: {}",
        r.stats[0].pushes
    );
    assert!(
        r.accuracy > 0.7,
        "accuracy through the crash: {}",
        r.accuracy
    );
}

#[test]
fn live_chaos_schedule_is_bit_deterministic() {
    // Seeded drops, reorder-delays and duplicates (no kill) on a
    // single-worker TCP cluster: because fault rules match message content
    // rather than timing, and dedup/reply-cache keep statistics a pure
    // function of the logical message set, two runs with the same seed
    // produce bit-identical parameters and counters.
    let run_once = || {
        run_chaos(&ChaosConfig {
            num_workers: 1,
            num_servers: 2,
            max_iters: 20,
            faults: 8,
            seed: 42,
            ..ChaosConfig::default()
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.fingerprint, b.fingerprint, "chaos run diverged");
    assert_eq!(
        a.stats
            .iter()
            .map(|s| (s.pushes, s.pulls_total, s.v_train_advances))
            .collect::<Vec<_>>(),
        b.stats
            .iter()
            .map(|s| (s.pushes, s.pulls_total, s.v_train_advances))
            .collect::<Vec<_>>()
    );
}

#[test]
fn eps_rebalances_around_cascading_server_failures() {
    let params: Vec<ParamSpec> = (0..20)
        .map(|k| ParamSpec {
            key: k,
            len: if k == 0 { 80_000 } else { 4_000 },
        })
        .collect();
    let total: usize = params.iter().map(|p| p.len).sum();
    let mut sched = Scheduler::new(params, 6, EpsSlicer { max_chunk: 8_192 }, 10);
    for s in 0..6 {
        sched.observe(NodeId::Server(s), 0);
    }
    // Two failures in sequence; after each, the placement must stay complete
    // and balanced.
    let mut now = 0;
    for survivors in [5u32, 4] {
        now += 20;
        for s in 0..survivors {
            sched.observe(NodeId::Server(s), now);
        }
        let (dead, moved) = sched.check_and_rebalance(now);
        assert_eq!(dead.len(), 1, "one failure per round");
        assert!(moved > 0);
        assert_eq!(sched.placement().num_servers(), survivors);
        assert_eq!(sched.placement().total_values(), total);
        assert!(
            sched.placement().imbalance() < 1.4,
            "imbalance {} after shrinking to {survivors}",
            sched.placement().imbalance()
        );
    }
}
