//! Live introspection endpoint, end to end: launch the threaded engine with
//! tracing and a metrics registry, train from worker threads, and scrape
//! `/healthz`, `/metrics` and `/trace` over real TCP *while the run is in
//! flight*. Validates the Prometheus text exposition shape: every
//! non-comment line is `name value` with a float value, and no full metric
//! name (base + labels) appears twice.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::TcpStream;

use std::time::{Duration, Instant};

use fluentps::core::condition::SyncModel;
use fluentps::core::engine::{Cluster, EngineConfig};
use fluentps::core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps::core::recovery::{RecoveryConfig, ResilientTcpCluster};
use fluentps::core::worker::RetryPolicy;
use fluentps::obs::{MetricsRegistry, TraceCollector};

/// Minimal HTTP/1.1 GET over a fresh connection; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Like [`http_get`] but also returns the raw header block, for tests that
/// assert on response headers (e.g. `Content-Type`).
fn http_get_with_headers(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, head.to_string(), body.to_string())
}

#[test]
fn threaded_engine_serves_metrics_and_healthz_while_training() {
    let num_workers = 2u32;
    let iters = 30u64;
    let params = vec![
        ParamSpec { key: 0, len: 512 },
        ParamSpec { key: 1, len: 128 },
    ];
    let map = EpsSlicer { max_chunk: 256 }.slice(&params, 1);
    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 512]);
    init.insert(1u64, vec![0.0f32; 128]);

    let collector = TraceCollector::wall(1 << 14);
    let registry = MetricsRegistry::new();
    let cfg = EngineConfig {
        num_workers,
        num_servers: 1,
        model: SyncModel::Ssp { s: 2 },
        ..EngineConfig::default()
    };
    let (cluster, workers, server) = Cluster::launch_introspected(
        cfg,
        map,
        &init,
        &collector,
        &registry,
        "127.0.0.1:0".parse().unwrap(),
    )
    .expect("bind introspection endpoint");
    let addr = server.local_addr();

    let handles: Vec<_> = workers
        .into_iter()
        .map(|mut w| {
            std::thread::spawn(move || {
                let grads: HashMap<u64, Vec<f32>> =
                    [(0u64, vec![1.0f32; 512]), (1u64, vec![1.0f32; 128])].into();
                for i in 0..iters {
                    w.spush(i, &grads).unwrap();
                    let mut out = HashMap::new();
                    w.spull_wait(i, &mut out).unwrap();
                }
            })
        })
        .collect();

    // Scrape mid-run: the endpoint must answer while workers are training.
    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert_eq!(body, "ok\n");

    let (status, text) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "metrics status: {status}");
    let mut seen = HashSet::new();
    let mut samples = 0;
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "unexpected comment line: {line}"
            );
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line is not `name value`: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("value {value:?} on {line:?} is not a float: {e}"));
        assert!(seen.insert(name.to_string()), "duplicate metric: {name}");
        samples += 1;
    }
    assert!(samples > 0, "no samples in exposition:\n{text}");
    assert!(
        text.contains("cluster_workers{engine=\"threaded\"} 2"),
        "missing cluster gauge in:\n{text}"
    );
    assert!(text.contains("# TYPE trace_events_recorded gauge"));
    assert!(text.contains("introspection_scrapes_total"));
    // The introspected launch seeds process-level metrics and HELP text.
    assert!(
        text.contains("# HELP process_start_seconds "),
        "missing HELP for process_start_seconds in:\n{text}"
    );
    assert!(text.contains("process_start_seconds "));
    assert!(
        text.contains("fluentps_build_info{"),
        "missing build info gauge in:\n{text}"
    );

    let (status, head, tail) = http_get_with_headers(addr, "/trace?last=8");
    assert!(status.contains("200"), "trace status: {status}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/x-ndjson"),
        "trace content type in headers:\n{head}"
    );
    let lines: Vec<&str> = tail.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty() && lines.len() <= 8, "tail: {tail}");
    for line in &lines {
        fluentps::obs::json::validate(line).expect("trace tail line is valid JSON");
    }

    for h in handles {
        h.join().expect("worker thread");
    }
    // A second scrape after the run reflects the finished trace.
    let (_, text) = http_get(addr, "/metrics");
    assert!(text.contains("trace_events_recorded"));

    // `/trace?kind=` keeps only one event kind, and composes with the
    // `actor=` and `last=` filters (kind first, then actor, then the tail).
    let (status, body) = http_get(addr, "/trace?kind=pull_requested");
    assert!(status.contains("200"), "kind filter status: {status}");
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(
        lines.len(),
        (num_workers as u64 * iters) as usize,
        "every pull and nothing else:\n{body}"
    );
    for line in &lines {
        assert!(
            line.contains("\"kind\":\"pull_requested\""),
            "filtered line: {line}"
        );
        fluentps::obs::json::validate(line).expect("filtered line is valid JSON");
    }
    let (status, body) = http_get(addr, "/trace?kind=pull_requested&actor=worker1&last=4");
    assert!(status.contains("200"), "composed filter status: {status}");
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 4, "tail caps the composed filter:\n{body}");
    for line in &lines {
        assert!(line.contains("\"kind\":\"pull_requested\""), "line: {line}");
        assert!(line.contains("\"worker\":1"), "line: {line}");
    }
    let (status, body) = http_get(addr, "/trace?kind=no_such_kind");
    assert!(status.contains("400"), "unknown kind: {status}\n{body}");

    // `/trace?request=` narrows to one causal request id and composes with
    // the other filters. The exporter always emits a `request_id` key, so a
    // served line tells us which id to ask for (0 = unstamped events).
    let (status, body) = http_get(addr, "/trace?kind=pull_requested&last=1");
    assert!(status.contains("200"), "seed line status: {status}");
    let seed_line = body
        .lines()
        .find(|l| !l.trim().is_empty())
        .expect("a pull event was served");
    let rid = seed_line
        .split("\"request_id\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("line carries a request_id: {seed_line}"));
    let (status, body) = http_get(
        addr,
        &format!("/trace?request={rid}&kind=pull_requested&last=4"),
    );
    assert!(status.contains("200"), "request filter status: {status}");
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        !lines.is_empty() && lines.len() <= 4,
        "request filter tail:\n{body}"
    );
    for line in &lines {
        assert!(
            line.contains(&format!("\"request_id\":{rid},")),
            "line kept the wrong request: {line}"
        );
        assert!(line.contains("\"kind\":\"pull_requested\""), "line: {line}");
        fluentps::obs::json::validate(line).expect("request-filtered line is valid JSON");
    }
    let (status, body) = http_get(addr, "/trace?request=notanumber");
    assert!(status.contains("400"), "bad request id: {status}\n{body}");

    // `/waterfall` assembles causal waterfalls from the same collector and
    // serves NDJSON: a balance line first, then one object per waterfall.
    let (status, head, body) = http_get_with_headers(addr, "/waterfall?slowest=3");
    assert!(status.contains("200"), "waterfall status: {status}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/x-ndjson"),
        "waterfall content type in headers:\n{head}"
    );
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    let balance = lines.first().expect("waterfall body has a balance line");
    for key in [
        "\"observed\":",
        "\"retained\":",
        "\"sampled_out\":",
        "\"balanced\":",
    ] {
        assert!(
            balance.contains(key),
            "balance line misses {key}: {balance}"
        );
    }
    assert!(
        balance.contains("\"balanced\":true"),
        "retained + sampled_out == observed: {balance}"
    );
    assert!(lines.len() <= 1 + 3, "slowest=3 caps the body:\n{body}");
    for line in &lines {
        fluentps::obs::json::validate(line).expect("waterfall line is valid JSON");
    }
    let (status, body) = http_get(addr, "/waterfall?top=1.5");
    assert!(status.contains("400"), "bad top fraction: {status}\n{body}");
    // 123456789 is below any worker's id range ((worker+1) << 40 | counter),
    // so it is never retained regardless of whether this engine stamps ids.
    let (status, body) = http_get(addr, "/waterfall?request=123456789");
    assert!(status.contains("404"), "unknown request: {status}\n{body}");

    // The introspected launch wires a streaming health engine: `/slo`
    // serves windowed SLO text and `/alerts` the transition log.
    let (status, slo) = http_get(addr, "/slo");
    assert!(status.contains("200"), "slo status: {status}");
    assert!(slo.contains("slo events "), "slo body:\n{slo}");
    assert!(slo.contains("alert dead_nodes ok"), "slo body:\n{slo}");
    let (status, head, alerts) = http_get_with_headers(addr, "/alerts");
    assert!(status.contains("200"), "alerts status: {status}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: application/x-ndjson"),
        "alerts content type in headers:\n{head}"
    );
    assert!(alerts.contains("\"state\""), "alerts body:\n{alerts}");

    // The profiled launch also serves span profiles while training runs.
    // Poll briefly: the scrape races the first worker push.
    let deadline = Instant::now() + Duration::from_secs(5);
    let folded = loop {
        let (status, folded) = http_get(addr, "/profile?format=folded");
        assert!(status.contains("200"), "profile status: {status}");
        if folded.lines().any(|l| l.starts_with("server/")) || Instant::now() > deadline {
            break folded;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        folded.lines().any(|l| l.starts_with("server/")),
        "folded profile has server spans:\n{folded}"
    );
    let (status, scope_json) = http_get(addr, "/profile?format=speedscope");
    assert!(status.contains("200"), "speedscope status: {status}");
    fluentps::obs::json::validate(scope_json.trim()).expect("speedscope export is valid JSON");

    drop(server);
    let stats = cluster.shutdown();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].pulls_total, num_workers as u64 * iters);
}

/// Poll `/healthz` until `pred(status, body)` holds or the deadline passes;
/// returns the final response either way.
fn poll_healthz(
    addr: std::net::SocketAddr,
    deadline: Duration,
    pred: impl Fn(&str, &str) -> bool,
) -> (String, String) {
    let start = Instant::now();
    loop {
        let (status, body) = http_get(addr, "/healthz");
        if pred(&status, &body) || start.elapsed() > deadline {
            return (status, body);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn resilient_engine_healthz_reflects_the_liveness_monitor() {
    // The fault-tolerant TCP engine feeds its supervisor's liveness view
    // into `/healthz`: ready (200) with per-server heartbeat ages while the
    // cluster is whole, degraded (503) once a server is declared dead and
    // not replaced.
    let params = vec![ParamSpec { key: 0, len: 8 }, ParamSpec { key: 1, len: 8 }];
    let map = EpsSlicer { max_chunk: 8 }.slice(&params, 2);
    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 8]);
    init.insert(1u64, vec![0.0f32; 8]);
    let cfg = EngineConfig {
        num_workers: 1,
        num_servers: 2,
        ..EngineConfig::default()
    };
    let rcfg = RecoveryConfig {
        heartbeat_every: Duration::from_millis(10),
        liveness_timeout: Duration::from_millis(60),
        checkpoint_every: 1,
        kill_server: Some((0, 2)),
        spawn_replacement: false, // degrade, so /healthz flips to 503
        retry: RetryPolicy {
            timeout: Duration::from_millis(50),
            max_retries: 80,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            jitter_seed: 7,
            replay_depth: 16,
        },
        ..RecoveryConfig::default()
    };
    let (cluster, mut workers) =
        ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
    let server = fluentps::obs::http::serve_with_health(
        "127.0.0.1:0".parse().unwrap(),
        MetricsRegistry::new(),
        None,
        Some(cluster.health()),
    )
    .expect("bind introspection endpoint");
    let addr = server.local_addr();

    // Whole cluster: ready, with a heartbeat-age line per server.
    let (status, body) = poll_healthz(addr, Duration::from_secs(5), |s, b| {
        s.contains("200") && b.contains("node server0") && b.contains("node server1")
    });
    assert!(
        status.contains("200"),
        "pre-failure healthz: {status}\n{body}"
    );
    assert!(body.starts_with("ready\n"), "pre-failure body: {body}");

    // Train through the kill; retries and degraded-mode rerouting absorb it.
    let mut w = workers.remove(0);
    let grads: HashMap<u64, Vec<f32>> = [(0u64, vec![1.0f32; 8]), (1u64, vec![1.0f32; 8])].into();
    let mut out = HashMap::new();
    for i in 0..6u64 {
        w.spush(i, &grads).expect("push");
        w.spull_wait(i, &mut out)
            .expect("pull survives degradation");
    }

    // Server 0 is dead for good: the readiness probe reports degraded.
    let (status, body) = poll_healthz(addr, Duration::from_secs(5), |s, _| s.contains("503"));
    assert!(
        status.contains("503"),
        "post-failure healthz: {status}\n{body}"
    );
    assert!(body.starts_with("degraded\n"), "post-failure body: {body}");
    assert!(body.contains("dead_nodes 1"), "post-failure body: {body}");

    server.stop();
    let stats = cluster.shutdown();
    assert!(
        stats[1].pushes >= 6,
        "survivor carried the tail of training"
    );
}

#[test]
fn resilient_engine_exports_consensus_gauges_and_healthz_consensus_line() {
    // A replicated control plane publishes its standing two ways: the
    // `consensus_*` gauges in the Prometheus exposition (with HELP text)
    // and a `consensus term … leader …` line in the `/healthz` body.
    let params = vec![ParamSpec { key: 0, len: 8 }];
    let map = EpsSlicer { max_chunk: 8 }.slice(&params, 2);
    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 8]);
    let cfg = EngineConfig {
        num_workers: 1,
        num_servers: 2,
        ..EngineConfig::default()
    };
    let registry = MetricsRegistry::new();
    let rcfg = RecoveryConfig {
        heartbeat_every: Duration::from_millis(10),
        liveness_timeout: Duration::from_millis(200),
        num_supervisors: 3,
        election_timeout: Duration::from_millis(120),
        leader_lease: Duration::from_millis(60),
        metrics: Some(registry.clone()),
        ..RecoveryConfig::default()
    };
    let (cluster, mut workers) =
        ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
    let server = fluentps::obs::http::serve_with_health(
        "127.0.0.1:0".parse().unwrap(),
        registry,
        None,
        Some(cluster.health()),
    )
    .expect("bind introspection endpoint");
    let addr = server.local_addr();

    // Train a little so the leader has commits to account for.
    let mut w = workers.remove(0);
    let grads: HashMap<u64, Vec<f32>> = [(0u64, vec![1.0f32; 8])].into();
    let mut out = HashMap::new();
    for i in 0..4u64 {
        w.spush(i, &grads).expect("push");
        w.spull_wait(i, &mut out).expect("pull");
    }

    // The quorum elects a leader and publishes it into both surfaces.
    let (status, body) = poll_healthz(addr, Duration::from_secs(10), |s, b| {
        s.contains("200") && b.contains("leader supervisor")
    });
    assert!(status.contains("200"), "healthz: {status}\n{body}");
    assert!(
        body.contains("consensus term") && body.contains("replicas 3"),
        "healthz consensus line: {body}"
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        let (status, text) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "metrics status: {status}");
        if text.contains("consensus_is_leader 1") || Instant::now() > deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    for gauge in [
        "consensus_term",
        "consensus_is_leader",
        "consensus_commits_total",
    ] {
        assert!(
            text.contains(&format!("# HELP {gauge} ")),
            "missing HELP for {gauge} in:\n{text}"
        );
    }
    assert!(
        text.contains("consensus_is_leader 1"),
        "quorum never elected in:\n{text}"
    );
    let term = text
        .lines()
        .find_map(|l| l.strip_prefix("consensus_term "))
        .expect("consensus_term sample")
        .parse::<f64>()
        .expect("term is a float");
    assert!(term >= 1.0, "term {term} before any election");

    server.stop();
    let stats = cluster.shutdown();
    let pushes: u64 = stats.iter().map(|s| s.pushes).sum();
    assert!(pushes >= 4, "training pushed through the quorum run");
}
