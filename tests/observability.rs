//! Observability invariants: tracing must be a pure observer (a traced run
//! is bit-for-bit the run it observes), fixed seeds must reproduce traces,
//! and the Chrome trace-event exporter's output is pinned by a golden file.
//!
//! Regenerate the golden fixture after an intentional exporter change with
//! `FLUENTPS_BLESS=1 cargo test --test observability`.

use std::sync::Arc;

use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind};
use fluentps::experiments::report::trace_reconciles;
use fluentps::ml::data::SyntheticSpec;
use fluentps::obs::{
    export, json, ClockSource, EventKind, RecordArgs, TraceCollector, VirtualClock,
};

fn traced_cfg() -> DriverConfig {
    DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
        },
        num_workers: 3,
        num_servers: 2,
        max_iters: 30,
        model: ModelKind::Softmax,
        dataset: Some(SyntheticSpec {
            dim: 12,
            classes: 3,
            n_train: 300,
            n_test: 60,
            margin: 2.5,
            modes: 1,
            label_noise: 0.05,
            seed: 11,
        }),
        batch_size: 16,
        eval_every: 10,
        trace_events: Some(1 << 14),
        seed: 11,
        ..DriverConfig::default()
    }
}

/// Bit-exact digest of the final parameters (sorted keys, f32 bits).
fn param_fingerprint(params: &fluentps::ml::ParamMap) -> String {
    let mut keys: Vec<u64> = params.keys().copied().collect();
    keys.sort_unstable();
    let mut out = String::new();
    for k in keys {
        out.push_str(&format!("{k}:"));
        for v in &params[&k] {
            out.push_str(&format!("{:08x}", v.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn tracing_enabled_runs_are_deterministic() {
    let cfg = traced_cfg();
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(
        param_fingerprint(a.final_params.as_ref().unwrap()),
        param_fingerprint(b.final_params.as_ref().unwrap()),
        "fixed seed must reproduce final parameters under tracing"
    );
    assert_eq!(a.stats, b.stats);
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.total(), tb.total(), "event count must be stable");
    assert_eq!(ta.counts, tb.counts);
    assert_eq!(ta.events.len(), tb.events.len());
}

#[test]
fn tracing_is_a_pure_observer() {
    let traced = run(&traced_cfg());
    let plain = run(&DriverConfig {
        trace_events: None,
        ..traced_cfg()
    });
    assert_eq!(
        param_fingerprint(traced.final_params.as_ref().unwrap()),
        param_fingerprint(plain.final_params.as_ref().unwrap()),
        "attaching a collector must not change training"
    );
    assert_eq!(traced.total_time, plain.total_time);
    assert_eq!(traced.stats, plain.stats);
    trace_reconciles(traced.trace.as_ref().unwrap(), &traced.stats)
        .expect("trace reconciles with shard stats");
}

/// Deterministic fixture: a virtual clock driven by hand, so the exporter's
/// output is byte-stable across machines and runs.
fn fixture_chrome_trace() -> String {
    let clock = VirtualClock::new();
    let collector = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 64);
    let tracer = collector.tracer();
    let at = |shard: u32, worker: u32, progress: u64, v_train: u64| {
        RecordArgs::new()
            .shard(shard)
            .worker(worker)
            .progress(progress)
            .v_train(v_train)
    };
    clock.set(0.001);
    tracer.record(EventKind::PullRequested, at(0, 0, 0, 0).bytes(42));
    clock.set(0.002);
    tracer.record(EventKind::PullDeferred, at(0, 1, 1, 0).bytes(42));
    clock.set(0.003);
    tracer.record(EventKind::PushApplied, at(1, 0, 0, 0).bytes(1024));
    clock.set(0.004);
    tracer.record(
        EventKind::VTrainAdvanced,
        RecordArgs::new().shard(0).v_train(1),
    );
    clock.set(0.005);
    tracer.record(EventKind::DprReleased, at(0, 1, 1, 1).bytes(128));
    let start = tracer.now();
    clock.set(0.007);
    tracer.record_span(
        EventKind::BarrierWait,
        start,
        RecordArgs::new().worker(1).progress(1).v_train(1),
    );
    clock.set(0.008);
    tracer.record(EventKind::WireSend, at(1, 0, 1, 0).bytes(256));
    tracer.record(EventKind::LatePushDropped, at(1, 2, 0, 3).bytes(64));
    export::chrome_trace(&collector.snapshot())
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let got = fixture_chrome_trace();
    json::validate(&got).expect("exporter emits valid JSON");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace_fixture.json"
    );
    if std::env::var("FLUENTPS_BLESS").is_ok() {
        std::fs::write(path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with FLUENTPS_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "Chrome-trace exporter output changed; if intentional, re-bless with FLUENTPS_BLESS=1"
    );
}

/// Deterministic *cluster* fixture: four nodes' streams (2 workers, 2
/// servers), each on its own clock epoch, hand-ingested into a
/// [`ClusterCollector`] with fixed offsets — exactly what the collector
/// service computes from its ping/pong handshakes, minus the sockets. The
/// export pins the whole merged pipeline: offset alignment, HLC tie-healing
/// and the `(ts, node, seq)` merge order.
fn fixture_cluster_chrome_trace() -> String {
    use fluentps::obs::{ClusterCollector, TraceEvent};

    let ev = |ts: f64, kind: EventKind, shard: u32, worker: u32, seq: u64| TraceEvent {
        ts,
        dur: 0.0,
        kind,
        shard,
        worker,
        progress: seq,
        v_train: 0,
        bytes: 64,
        seq,
        ..Default::default()
    };
    let mut cluster = ClusterCollector::new(64);
    // worker0 runs 2.0s behind the collector clock, worker1 0.5s ahead,
    // server0 is aligned, server1 1.0s behind. Each stream's local
    // timestamps are chosen so the *aligned* events interleave across
    // nodes: worker0's send at local 0.010 lands at 2.010, between
    // server0's recv (2.005) and reply (2.015).
    cluster.ingest(
        "worker0",
        2.0,
        1,
        3,
        0,
        &[
            ev(0.010, EventKind::WireSend, 0, 0, 0),
            ev(0.030, EventKind::WireRecv, 0, 0, 1),
            ev(0.030, EventKind::BarrierWait, 0, 0, 2), // tie → HLC bump
        ],
    );
    cluster.ingest(
        "worker1",
        -0.5,
        1,
        2,
        0,
        &[
            ev(2.512, EventKind::WireSend, 1, 1, 0),
            ev(2.535, EventKind::WireRecv, 1, 1, 1),
        ],
    );
    cluster.ingest(
        "server0",
        0.0,
        1,
        4,
        1, // of 4 recorded, one was lost to a ring overwrite at the sender
        &[
            ev(2.005, EventKind::WireRecv, 0, 0, 1),
            ev(2.014, EventKind::PushApplied, 0, 0, 2),
            ev(2.015, EventKind::WireSend, 0, 0, 3),
        ],
    );
    // server1 restarts mid-run (a replacement after a kill): batch_seq
    // resets and its counters start over — the second incarnation's
    // accounting folds into the same stream.
    cluster.ingest(
        "server1",
        1.0,
        1,
        1,
        0,
        &[ev(1.013, EventKind::WireRecv, 1, 1, 0)],
    );
    cluster.ingest(
        "server1",
        1.0,
        1,
        2,
        0,
        &[
            ev(1.020, EventKind::VTrainAdvanced, 1, 1, 0),
            ev(1.025, EventKind::WireSend, 1, 1, 1),
        ],
    );
    cluster
        .check_balance()
        .expect("fixture accounting balances");
    export::chrome_trace(&cluster.snapshot())
}

#[test]
fn cluster_chrome_trace_export_matches_golden_file() {
    let got = fixture_cluster_chrome_trace();
    json::validate(&got).expect("exporter emits valid JSON");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace_cluster_fixture.json"
    );
    if std::env::var("FLUENTPS_BLESS").is_ok() {
        std::fs::write(path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with FLUENTPS_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "merged-cluster trace export changed; if intentional, re-bless with FLUENTPS_BLESS=1"
    );
}
