//! The paper's qualitative claims, checked at miniature scale through the
//! discrete-event driver. Each test corresponds to a headline sentence of
//! the evaluation; the full-size reproductions live in the `repro` binary
//! and the bench harness.

use fluentps::baseline::pslite::PsLiteMode;
use fluentps::core::condition::SyncModel;
use fluentps::core::dpr::DprPolicy;
use fluentps::core::eps::ParamSpec;
use fluentps::core::regret::equivalent_ssp_threshold;
use fluentps::experiments::driver::{
    run, DriverConfig, EngineKind, ModelKind, RunResult, SlicerKind,
};
use fluentps::ml::data::SyntheticSpec;
use fluentps::ml::schedule::LrSchedule;
use fluentps::simnet::compute::StragglerSpec;
use fluentps::simnet::net::LinkModel;

fn skewed_inventory() -> Vec<ParamSpec> {
    let mut v = vec![ParamSpec {
        key: 0,
        len: 200_000,
    }];
    for k in 1..24 {
        v.push(ParamSpec { key: k, len: 8_000 });
    }
    v
}

fn timing_cfg(engine: EngineKind, slicer: SlicerKind) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: 16,
        num_servers: 4,
        slicer,
        max_iters: 25,
        model: ModelKind::TimingOnly {
            params: skewed_inventory(),
        },
        dataset: None,
        compute_base: 4.0,
        compute_jitter: 0.15,
        stragglers: StragglerSpec::random_slowdowns(),
        link: LinkModel::gbe(),
        eval_every: 0,
        seed: 61,
        ..DriverConfig::default()
    }
}

fn straggler_cfg(model: SyncModel, policy: DprPolicy) -> DriverConfig {
    DriverConfig {
        engine: EngineKind::FluentPs { model, policy },
        num_workers: 12,
        num_servers: 1,
        max_iters: 150,
        model: ModelKind::TimingOnly {
            params: skewed_inventory(),
        },
        dataset: None,
        compute_base: 4.0,
        compute_jitter: 0.3,
        stragglers: StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.6,
        },
        link: LinkModel::aws_25g(),
        eval_every: 0,
        seed: 67,
        ..DriverConfig::default()
    }
}

/// "Overlap synchronization ... can be up to 4.26× faster than PS-Lite":
/// FluentPS beats the centralized non-overlap design, and EPS improves it
/// further (Figure 6's ordering).
#[test]
fn figure6_ordering_fluentps_beats_pslite_and_eps_beats_default() {
    let pslite = run(&timing_cfg(
        EngineKind::PsLite {
            mode: PsLiteMode::Bsp,
        },
        SlicerKind::Default,
    ));
    let fluent = run(&timing_cfg(
        EngineKind::FluentPs {
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
        },
        SlicerKind::Default,
    ));
    let eps = run(&timing_cfg(
        EngineKind::FluentPs {
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
        },
        SlicerKind::Eps { max_chunk: 16_384 },
    ));
    assert!(
        fluent.total_time < pslite.total_time,
        "overlap {:.1}s !< non-overlap {:.1}s",
        fluent.total_time,
        pslite.total_time
    );
    assert!(
        eps.total_time < fluent.total_time,
        "EPS {:.1}s !< default slicing {:.1}s",
        eps.total_time,
        fluent.total_time
    );
    assert!(
        eps.comm_time_mean < pslite.comm_time_mean,
        "EPS should reduce communication"
    );
}

/// "Lazy execution ... saves up to 97.1% DPRs" (Figure 9 / Table IV): under
/// the same SSP model, lazy execution produces far fewer DPRs than the soft
/// barrier and is not slower.
#[test]
fn lazy_execution_slashes_dprs_vs_soft_barrier() {
    let soft = run(&straggler_cfg(
        SyncModel::Ssp { s: 2 },
        DprPolicy::SoftBarrier,
    ));
    let lazy = run(&straggler_cfg(
        SyncModel::Ssp { s: 2 },
        DprPolicy::LazyExecution,
    ));
    assert!(
        (lazy.stats.dprs as f64) < soft.stats.dprs as f64 * 0.5,
        "lazy {} DPRs !< half of soft {}",
        lazy.stats.dprs,
        soft.stats.dprs
    );
    assert!(
        lazy.total_time <= soft.total_time * 1.02,
        "lazy {:.1}s should not be slower than soft {:.1}s",
        lazy.total_time,
        soft.total_time
    );
}

/// "PSSP outperforms SSP by reducing up to 97.1% DPRs" under the same regret
/// bound: PSSP(s=3, c) vs SSP(s + 1/c − 1) pairs (Figure 9's groups).
#[test]
fn pssp_beats_regret_equivalent_ssp_on_dprs() {
    for c in [0.5, 0.2] {
        let s_prime = equivalent_ssp_threshold(3, c).round() as u64;
        let pssp = run(&straggler_cfg(
            SyncModel::PsspConst { s: 3, c },
            DprPolicy::SoftBarrier,
        ));
        let ssp = run(&straggler_cfg(
            SyncModel::Ssp { s: s_prime },
            DprPolicy::SoftBarrier,
        ));
        assert!(
            pssp.stats.dprs < ssp.stats.dprs,
            "c={c}: PSSP {} DPRs !< SSP(s'={s_prime}) {}",
            pssp.stats.dprs,
            ssp.stats.dprs
        );
    }
}

fn training_cfg(engine: EngineKind, n: u32) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: n,
        num_servers: 1,
        max_iters: 250,
        model: ModelKind::Mlp { hidden: vec![32] },
        dataset: Some(SyntheticSpec {
            dim: 24,
            classes: 6,
            n_train: 3000,
            n_test: 600,
            margin: 3.0,
            modes: 1,
            label_noise: 0.0,
            seed: 71,
        }),
        batch_size: 16,
        lr: LrSchedule::Constant(0.2),
        compute_base: 1.0,
        eval_every: 0,
        seed: 71,
        ..DriverConfig::default()
    }
}

/// "FluentPS can well support large-scale distributed deep learning because
/// more workers will not cause convergence loss like PMLS-Caffe" (Figures
/// 1 and 7): at 16 workers the SSPtable baseline loses accuracy badly while
/// FluentPS holds.
#[test]
fn ssptable_collapses_at_scale_while_fluentps_holds() {
    let n = 16;
    let fluent = run(&training_cfg(
        EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 3 },
            policy: DprPolicy::LazyExecution,
        },
        n,
    ));
    let ssptable = run(&training_cfg(EngineKind::SspTable { s: 3 }, n));
    assert!(
        fluent.final_accuracy > ssptable.final_accuracy + 0.1,
        "FluentPS {:.3} should beat SSPtable {:.3} clearly at N={n}",
        fluent.final_accuracy,
        ssptable.final_accuracy
    );
    // And at 2 workers they are close.
    let fluent2 = run(&training_cfg(
        EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 3 },
            policy: DprPolicy::LazyExecution,
        },
        2,
    ));
    let ssptable2 = run(&training_cfg(EngineKind::SspTable { s: 3 }, 2));
    assert!(
        (fluent2.final_accuracy - ssptable2.final_accuracy).abs() < 0.12,
        "at N=2 the systems should be close: {:.3} vs {:.3}",
        fluent2.final_accuracy,
        ssptable2.final_accuracy
    );
}

/// Figure 10's ordering: BSP is slowest; ASP has the worst accuracy; PSSP
/// is fast with near-BSP accuracy.
#[test]
fn figure10_ordering_holds() {
    let with_stragglers = |model| {
        let mut cfg = training_cfg(
            EngineKind::FluentPs {
                model,
                policy: DprPolicy::LazyExecution,
            },
            16,
        );
        cfg.compute_jitter = 0.3;
        cfg.stragglers = StragglerSpec {
            transient_prob: 0.08,
            transient_factor: 2.5,
            persistent_count: 2,
            persistent_factor: 2.2,
        };
        cfg.lr = LrSchedule::Constant(0.3);
        run(&cfg)
    };
    let bsp: RunResult = with_stragglers(SyncModel::Bsp);
    let asp = with_stragglers(SyncModel::Asp);
    let pssp = with_stragglers(SyncModel::PsspConst { s: 3, c: 0.3 });
    assert!(
        asp.total_time < bsp.total_time,
        "ASP {:.1}s !< BSP {:.1}s",
        asp.total_time,
        bsp.total_time
    );
    assert!(
        pssp.total_time < bsp.total_time,
        "PSSP {:.1}s !< BSP {:.1}s",
        pssp.total_time,
        bsp.total_time
    );
    assert!(
        pssp.final_accuracy > asp.final_accuracy,
        "PSSP {:.3} accuracy !> ASP {:.3}",
        pssp.final_accuracy,
        asp.final_accuracy
    );
}

/// The simulator is fully deterministic: identical configs produce identical
/// results, bit for bit.
#[test]
fn full_stack_determinism() {
    let cfg = training_cfg(
        EngineKind::FluentPs {
            model: SyncModel::PsspConst { s: 2, c: 0.4 },
            policy: DprPolicy::LazyExecution,
        },
        6,
    );
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.stats, b.stats);
}

/// Figure 2's headline flexibility: different shards run different models in
/// one job. The SSP shard defers fast pulls while the ASP shard never does.
#[test]
fn per_server_heterogeneous_models_behave_independently() {
    let mut cfg = training_cfg(
        EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
        },
        8,
    );
    cfg.num_servers = 2;
    cfg.per_server_models = Some(vec![SyncModel::Ssp { s: 2 }, SyncModel::Asp]);
    cfg.compute_jitter = 0.3;
    cfg.stragglers = StragglerSpec {
        transient_prob: 0.05,
        transient_factor: 2.0,
        persistent_count: 1,
        persistent_factor: 1.8,
    };
    let r = run(&cfg);
    // The run completes and learns; the SSP shard produced DPRs while the
    // ASP shard produced none (total DPRs > 0 but pulls_immediate covers at
    // least the ASP shard's share).
    assert!(r.final_accuracy > 0.5, "acc {}", r.final_accuracy);
    assert!(r.stats.dprs > 0, "SSP shard must defer under a straggler");
    assert!(
        r.stats.pulls_immediate > r.stats.pulls_total / 2,
        "ASP shard answers everything immediately"
    );
}

/// PS-Lite's bounded-delay mode parks workers at the scheduler less often
/// than BSP and more often than ASP (which never parks). Time is not
/// necessarily monotone — fast workers running ahead can add contention at
/// the bottleneck server — but the barrier frequency is.
#[test]
fn pslite_bounded_delay_parks_between_bsp_and_asp() {
    use fluentps::baseline::pslite::PsLiteMode;
    let mk = |mode| {
        let mut cfg = timing_cfg(EngineKind::PsLite { mode }, SlicerKind::Default);
        cfg.stragglers = StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.7,
        };
        run(&cfg)
    };
    let bsp = mk(PsLiteMode::Bsp);
    let bounded = mk(PsLiteMode::BoundedDelay(3));
    let asp = mk(PsLiteMode::Asp);
    assert_eq!(asp.barrier_count, 0, "ASP never parks");
    assert!(
        bounded.barrier_count < bsp.barrier_count,
        "bounded {} parks !< BSP {}",
        bounded.barrier_count,
        bsp.barrier_count
    );
    assert!(
        bounded.barrier_count > 0,
        "bounded delay still parks racers"
    );
}
