//! Cross-model invariants of the simulation driver: whatever the
//! synchronization model, engine and policy, certain bookkeeping identities
//! must hold on every completed run.

use fluentps::baseline::pslite::PsLiteMode;
use fluentps::core::condition::{DspsConfig, SyncModel};
use fluentps::core::dpr::DprPolicy;
use fluentps::core::eps::ParamSpec;
use fluentps::experiments::driver::{run, DriverConfig, EngineKind, ModelKind, SlicerKind};
use fluentps::ml::data::SyntheticSpec;
use fluentps::simnet::compute::StragglerSpec;

fn all_engines() -> Vec<(&'static str, EngineKind)> {
    let mut v: Vec<(&'static str, EngineKind)> = vec![
        (
            "pslite-bsp",
            EngineKind::PsLite {
                mode: PsLiteMode::Bsp,
            },
        ),
        (
            "pslite-bounded",
            EngineKind::PsLite {
                mode: PsLiteMode::BoundedDelay(2),
            },
        ),
        ("ssptable", EngineKind::SspTable { s: 3 }),
    ];
    for (name, model) in [
        ("bsp", SyncModel::Bsp),
        ("asp", SyncModel::Asp),
        ("ssp", SyncModel::Ssp { s: 2 }),
        ("dsps", SyncModel::Dsps(DspsConfig::default())),
        ("drop", SyncModel::DropStragglers { n_t: 5 }),
        ("pssp-const", SyncModel::PsspConst { s: 2, c: 0.4 }),
    ] {
        v.push((
            name,
            EngineKind::FluentPs {
                model,
                policy: DprPolicy::LazyExecution,
            },
        ));
        // And the soft-barrier flavour of the same model.
        if name == "ssp" || name == "pssp-const" {
            v.push((
                "soft",
                EngineKind::FluentPs {
                    model,
                    policy: DprPolicy::SoftBarrier,
                },
            ));
        }
    }
    v
}

fn timing_cfg(engine: EngineKind) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: 6,
        num_servers: 3,
        slicer: SlicerKind::Eps { max_chunk: 4096 },
        max_iters: 30,
        model: ModelKind::TimingOnly {
            params: vec![
                ParamSpec { key: 0, len: 9_000 },
                ParamSpec { key: 1, len: 3_000 },
                ParamSpec { key: 2, len: 1_000 },
            ],
        },
        dataset: None,
        compute_base: 2.0,
        compute_jitter: 0.25,
        stragglers: StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.5,
        },
        eval_every: 0,
        seed: 101,
        ..DriverConfig::default()
    }
}

#[test]
fn bookkeeping_identities_hold_for_every_engine() {
    for (name, engine) in all_engines() {
        let r = run(&timing_cfg(engine));
        let st = &r.stats;
        // Every pull is answered exactly one way.
        assert_eq!(
            st.pulls_total,
            st.pulls_immediate + st.dprs,
            "{name}: pull accounting"
        );
        // Every deferral is eventually released (runs complete).
        assert_eq!(st.dprs, st.dprs_released, "{name}: DPR conservation");
        // Wait histogram matches the release counter.
        assert_eq!(
            st.dpr_wait_hist.count(),
            st.dprs_released,
            "{name}: histogram count"
        );
        // The run made full progress on every shard.
        assert_eq!(st.v_train_advances, 30 * 3, "{name}: progress");
        // Time accounting: total ≥ per-worker compute mean; comm ≥ 0.
        assert!(r.total_time >= r.compute_time_mean, "{name}: time");
        assert!(r.comm_time_mean >= 0.0, "{name}: comm");
        // Bytes flowed both ways.
        assert!(st.bytes_in > 0 && st.bytes_out > 0, "{name}: bytes");
    }
}

#[test]
fn late_push_drops_only_under_drop_stragglers() {
    for (name, engine) in all_engines() {
        let r = run(&timing_cfg(engine));
        match engine {
            EngineKind::FluentPs {
                model: SyncModel::DropStragglers { .. },
                ..
            } => {}
            _ => assert_eq!(
                r.stats.late_pushes_dropped, 0,
                "{name}: only drop-stragglers discards gradients"
            ),
        }
    }
}

#[test]
fn asp_never_defers_and_bsp_defers_most() {
    let mk = |model| {
        run(&timing_cfg(EngineKind::FluentPs {
            model,
            policy: DprPolicy::LazyExecution,
        }))
        .stats
        .dprs
    };
    let asp = mk(SyncModel::Asp);
    let ssp = mk(SyncModel::Ssp { s: 2 });
    let bsp = mk(SyncModel::Bsp);
    assert_eq!(asp, 0);
    assert!(bsp >= ssp, "BSP {bsp} defers at least as much as SSP {ssp}");
    assert!(bsp > 0, "BSP defers under a straggler");
}

#[test]
fn warm_start_resumes_exactly_where_training_left_off() {
    // Two staged runs with a warm handoff must equal one longer run in the
    // deterministic-progress sense: the staged final accuracy lands close to
    // the single-run accuracy (batch order differs, exact equality is not
    // expected).
    let base = DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
        },
        num_workers: 4,
        num_servers: 2,
        max_iters: 120,
        model: ModelKind::Softmax,
        dataset: Some(SyntheticSpec {
            dim: 16,
            classes: 4,
            n_train: 1500,
            n_test: 400,
            margin: 3.0,
            modes: 1,
            label_noise: 0.0,
            seed: 55,
        }),
        batch_size: 16,
        compute_base: 1.0,
        eval_every: 0,
        seed: 55,
        ..DriverConfig::default()
    };
    let single = run(&base);

    let mut first = base.clone();
    first.max_iters = 60;
    let stage1 = run(&first);
    let mut second = base.clone();
    second.max_iters = 60;
    second.initial_params = stage1.final_params.clone();
    let stage2 = run(&second);

    assert!(
        stage2.final_accuracy > stage1.final_accuracy - 0.01,
        "stage 2 ({}) must not regress from stage 1 ({})",
        stage2.final_accuracy,
        stage1.final_accuracy
    );
    assert!(
        (stage2.final_accuracy - single.final_accuracy).abs() < 0.08,
        "staged {} vs single {} should land close",
        stage2.final_accuracy,
        single.final_accuracy
    );
}
