//! Table I / Table III: every synchronization model is expressible as a
//! pull condition plus a push condition — including user-defined ones
//! through the `SyncPolicy` (SetcondPull/SetcondPush) extension point.

use fluentps::core::condition::{DspsConfig, SyncModel, SyncPolicy, SyncState};
use fluentps::core::dpr::DprPolicy;
use fluentps::core::pssp::Alpha;
use fluentps::core::server::{GradScale, PullOutcome, ServerShard, ShardConfig};
use fluentps::transport::KvPairs;

fn shard_with(model: SyncModel, n: u32) -> ServerShard {
    let mut s = ServerShard::new(ShardConfig {
        server_id: 0,
        num_workers: n,
        model,
        policy: DprPolicy::LazyExecution,
        grad_scale: GradScale::DivideByN,
    });
    s.init_param(0, vec![0.0]);
    s
}

/// Drive `iters` iterations of `n` lockstep workers through a shard and
/// return how many pulls were deferred.
fn run_lockstep(model: SyncModel, n: u32, iters: u64) -> u64 {
    let mut shard = shard_with(model, n);
    for i in 0..iters {
        for w in 0..n {
            shard.on_push(w, i, &KvPairs::single(0, vec![1.0]));
        }
        for w in 0..n {
            let _ = shard.on_pull(w, i, &[0], 0.5, None);
        }
    }
    shard.stats().dprs
}

#[test]
fn all_six_builtin_models_run_a_full_workload() {
    let models = [
        SyncModel::Bsp,
        SyncModel::Asp,
        SyncModel::Ssp { s: 2 },
        SyncModel::Dsps(DspsConfig::default()),
        SyncModel::DropStragglers { n_t: 3 },
        SyncModel::PsspConst { s: 2, c: 0.5 },
    ];
    for model in models {
        let deferred = run_lockstep(model, 4, 10);
        // Lockstep workers never violate any bound: only BSP-family models
        // (pull needs progress < V_train) defer the same-iteration pulls.
        match model {
            SyncModel::Asp | SyncModel::Ssp { .. } | SyncModel::PsspConst { .. } => {
                assert_eq!(deferred, 0, "{model:?} deferred in lockstep")
            }
            _ => {}
        }
    }
    // Dynamic PSSP too.
    run_lockstep(
        SyncModel::PsspDynamic {
            s: 2,
            alpha: Alpha::Constant(0.5),
        },
        4,
        10,
    );
}

/// A brand-new model built from the exposed synchronization state: "block
/// any pull while fewer than half the workers have pushed the current
/// iteration" — something none of the built-ins express.
struct HalfQuorum;

impl SyncPolicy for HalfQuorum {
    fn pull_permitted(
        &mut self,
        st: &SyncState,
        _progress: u64,
        _draw: f64,
        _sig: Option<f64>,
    ) -> bool {
        st.count_at_v_train * 2 >= st.num_workers
    }

    fn push_fires(&mut self, st: &SyncState) -> bool {
        st.count_at_v_train >= st.num_workers
    }

    fn release_permitted(&self, st: &SyncState, _progress: u64) -> bool {
        st.count_at_v_train * 2 >= st.num_workers || st.count_at_v_train == 0
    }

    fn name(&self) -> &'static str {
        "half-quorum"
    }
}

#[test]
fn custom_setcond_policy_plugs_in() {
    let mut shard = ServerShard::with_policy(
        ShardConfig {
            num_workers: 4,
            ..ShardConfig::default()
        },
        Box::new(HalfQuorum),
    );
    shard.init_param(0, vec![0.0]);

    // No pushes yet: count 0 of 4 → pull deferred.
    assert_eq!(shard.on_pull(0, 0, &[0], 0.5, None), PullOutcome::Deferred);
    shard.on_push(0, 0, &KvPairs::single(0, vec![1.0]));
    // 1 of 4 pushed → still deferred.
    assert_eq!(shard.on_pull(1, 0, &[0], 0.5, None), PullOutcome::Deferred);
    shard.on_push(1, 0, &KvPairs::single(0, vec![1.0]));
    // 2 of 4 → the quorum holds, pulls flow immediately.
    assert!(matches!(
        shard.on_pull(2, 0, &[0], 0.5, None),
        PullOutcome::Respond { .. }
    ));
}

#[test]
fn ssp_zero_is_bsp_and_pssp_extremes_match_table_iii() {
    // s = 0 → BSP; PSSP c=1 → SSP; PSSP c=0 → ASP. Verified on live shards.
    let n = 3;
    for i in 0..5u64 {
        let mut bsp = shard_with(SyncModel::Bsp, n);
        let mut ssp0 = shard_with(SyncModel::Ssp { s: 0 }, n);
        for w in 0..n {
            bsp.on_push(w, 0, &KvPairs::single(0, vec![1.0]));
            ssp0.on_push(w, 0, &KvPairs::single(0, vec![1.0]));
        }
        let a = bsp.on_pull(0, i, &[0], 0.3, None);
        let b = ssp0.on_pull(0, i, &[0], 0.3, None);
        assert_eq!(
            matches!(a, PullOutcome::Respond { .. }),
            matches!(b, PullOutcome::Respond { .. }),
            "BSP vs SSP(0) disagree at progress {i}"
        );
    }
}

#[test]
fn dsps_adapts_staleness_threshold_at_runtime() {
    let cfg = DspsConfig {
        s_min: 1,
        s_max: 6,
        s0: 2,
    };
    let mut shard = shard_with(SyncModel::Dsps(cfg), 2);
    // Worker 0 races far ahead while worker 1 stalls: the spread grows, and
    // DSPS widens its live threshold, so a gap that SSP s=2 would block
    // eventually passes.
    let mut permitted_at_gap_4 = false;
    for i in 0..12u64 {
        shard.on_push(0, i, &KvPairs::single(0, vec![1.0]));
        if let PullOutcome::Respond { .. } = shard.on_pull(0, i, &[0], 0.5, None) {
            if i >= shard.v_train() + 4 {
                permitted_at_gap_4 = true;
            }
        }
    }
    assert!(
        permitted_at_gap_4,
        "DSPS should widen beyond the initial threshold under persistent spread"
    );
}
